//! The inference server: model registry, batching scheduler, and the
//! thread-per-connection TCP front end.
//!
//! ## Architecture
//!
//! One **evaluator worker thread per deployed model** owns that
//! model's [`Sally`] and drains a **bounded** job queue
//! ([`crate::queue`]). Connection threads only do socket I/O and
//! ciphertext (de)serialisation; every `Query` frame becomes a job on
//! its model's queue, and the connection thread blocks on a per-job
//! reply slot. The worker is the batching scheduler: after the first
//! job arrives it keeps draining the queue for
//! [`ServerConfig::batch_window`] (up to [`ServerConfig::max_batch`]
//! jobs), then runs one [`Sally::classify_batch_traced`] pass over
//! everything it caught — so queries from concurrently connected
//! clients traverse the level-matrix and reshuffle artifacts once per
//! batch, not once per query.
//!
//! ## Overload and failure model
//!
//! The serving tier degrades instead of stalling (docs/ROBUSTNESS.md
//! is the full story):
//!
//! * a **full queue sheds**: the client gets a wire-v5 `Busy` frame
//!   with a structured [`ShedDetail`] (pre-v5 sessions get a plain
//!   `Error`), never an unbounded wait;
//! * a **query deadline** ([`Frame::Query`]'s `deadline_ms`) is
//!   checked at dequeue — an expired job is answered with a typed
//!   error and *never evaluated*;
//! * **connection read/write timeouts** bound slow-loris sessions;
//! * models **hot deploy/undeploy** through
//!   [`ServerHandle::deploy`] / [`ServerHandle::undeploy`], routed
//!   through the same `copse-analyze` admission gate as `bind`, with
//!   an undeployed model's accepted jobs drained (evaluated) before
//!   its worker exits;
//! * [`ServerHandle::shutdown`] **drains**: queued-but-unstarted jobs
//!   are answered with a shed, in-flight batches finish — no accepted
//!   query ever goes unanswered;
//! * a [`FaultPlan`] can inject seeded socket and
//!   worker faults for chaos testing ([`ServerBuilder::faults`]).

use crate::faults::{FaultPlan, ServerFaults};
use crate::flight::{FlightRecord, FlightRecorder};
use crate::queue::{self, TrySendError};
use crate::stats::{CircuitSummary, ServerStats};
use crate::transport::{read_frame_versioned, write_frame_versioned};
use bytes::Bytes;
use copse_analyze::{AdmissionIssue, BackendProfile, CircuitReport, EvalShape};
use copse_core::compiler::{CompileError, CompileOptions};
use copse_core::runtime::{
    DeployedModel, EncryptedQuery, EvalOptions, Maurice, ModelForm, QueryInfo, Sally,
};
use copse_core::wire::{
    Frame, ModelQueueDepth, RejectionCode, RejectionDetail, ServerTiming, ShedDetail, TimingCause,
    MAX_DEADLINE_MS,
};
use copse_fhe::{BackendError, CostModel, FheBackend};
use copse_forest::model::Forest;
use copse_trace::Stopwatch;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Scheduler and service limits.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// How long a model worker keeps coalescing after the first query
    /// of a batch arrives.
    pub batch_window: Duration,
    /// Hard cap on queries per evaluation pass.
    pub max_batch: usize,
    /// Per-model job queue bound: the `queue_capacity + 1`-th
    /// concurrent query on one model is shed with a `Busy` frame
    /// instead of queued. Floored at 1.
    pub queue_capacity: usize,
    /// The `retry_after_ms` hint shed frames carry.
    pub retry_after_ms: u32,
    /// Per-connection socket read timeout (`None` = unbounded). A
    /// client that stalls mid-frame longer than this is disconnected
    /// — the slow-loris bound.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout (`None` = unbounded): a
    /// client that stops reading cannot pin a connection thread.
    pub write_timeout: Option<Duration>,
    /// How many per-query [`FlightRecord`]s the always-on flight
    /// recorder retains (a ring: overload laps it, memory stays
    /// bounded). `0` disables recording — the serving bench uses that
    /// to measure the recorder's cost.
    pub flight_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            batch_window: Duration::from_millis(5),
            max_batch: 64,
            queue_capacity: 256,
            retry_after_ms: 50,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            flight_capacity: 1024,
        }
    }
}

/// What `bind` does when `copse-analyze` finds a registered model the
/// backend cannot evaluate (circuit deeper than the modulus chain,
/// operands wider than the slot count, rotations on a rotation-free
/// ring).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Do not deploy the model. Clients that hello it get a structured
    /// wire error carrying the analyzer's numbers. The default: a
    /// model that cannot produce correct answers must not serve.
    #[default]
    Reject,
    /// Deploy anyway (differential-testing and bring-up use), but
    /// record the diagnostic so the operator stats page shows the
    /// model over budget.
    Warn,
}

/// Why a hot [`ServerHandle::deploy`] (or a `bind`-time registration)
/// did not deploy.
#[derive(Debug)]
pub enum DeployError {
    /// `copse-analyze` says the backend cannot evaluate this circuit;
    /// the diagnostic is recorded so clients that hello the model get
    /// the same typed rejection.
    Rejected(RejectionDetail),
    /// A model with this name is already deployed.
    DuplicateName(String),
    /// The evaluator worker thread could not be spawned.
    Spawn(io::Error),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Rejected(detail) => write!(
                f,
                "model `{}` rejected by admission: {}",
                detail.model,
                rejection_text(detail)
            ),
            DeployError::DuplicateName(name) => {
                write!(f, "model `{name}` is already deployed")
            }
            DeployError::Spawn(e) => write!(f, "could not spawn the evaluator worker: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

/// One queued inference job: deserialized query planes, the client's
/// deadline budget, the slot its outcome goes back in, and when its
/// frame was received (so the stats can split end-to-end latency into
/// queue wait vs evaluation, the worker can shed expired jobs, and
/// every [`ServerTiming`] offset shares one origin).
struct Job<B: FheBackend> {
    planes: Vec<B::Ciphertext>,
    /// Milliseconds the client gave this query, measured from frame
    /// receipt (`received`); 0 = no deadline. Relative on purpose:
    /// client and server clocks are never compared.
    deadline_ms: u32,
    /// Client-assigned trace id when the query asked to be traced
    /// (wire v6); threads through the queue into the worker's spans
    /// and the returned timing record.
    trace: Option<u64>,
    reply: queue::BoundedSender<JobOutcome<B>>,
    /// Started at frame receipt: the clock origin of every relative
    /// offset this query reports.
    received: Stopwatch,
    /// Receipt→enqueue offset in nanoseconds, stamped by the
    /// connection thread just before `try_send`.
    enqueue_nanos: u64,
}

/// What the evaluator worker answers a job with. Every variant
/// carries the per-query [`ServerTiming`] record (cause, offsets,
/// batch attribution) — the connection thread patches in the final
/// encode offset, feeds the flight recorder, and forwards the record
/// to clients that asked to be traced.
enum JobOutcome<B: FheBackend> {
    /// Evaluated: the result ciphertext plus its timing split and the
    /// lane occupancy of the packed ciphertext that carried the query
    /// (1 when it was evaluated in its own ciphertext).
    Done {
        ciphertext: B::Ciphertext,
        timing: ServerTiming,
        packed_size: u32,
    },
    /// Evaluation failed with a typed message.
    Failed {
        message: String,
        timing: ServerTiming,
    },
    /// The client deadline expired while the job was queued; it was
    /// never evaluated.
    Expired {
        /// How long the job actually waited, for the error text.
        waited_ms: u64,
        timing: ServerTiming,
    },
    /// Shed during shutdown drain: accepted but answerable only with
    /// "retry elsewhere/later".
    Shed {
        detail: ShedDetail,
        timing: ServerTiming,
    },
}

/// A deployed model as the connection threads see it. Sessions hold
/// an `Arc` of this, so a hot undeploy invalidates the *queue* (sends
/// fail `Closed`), never a pointer.
struct ModelEntry<B: FheBackend> {
    name: String,
    form: ModelForm,
    info: QueryInfo,
    jobs: queue::BoundedSender<Job<B>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// The mutable model registry: hot deploy/undeploy swaps entries here
/// under the write lock while connection threads resolve hellos under
/// read locks.
struct Registry<B: FheBackend> {
    models: HashMap<String, Arc<ModelEntry<B>>>,
    /// Models refused at deploy time, with the analyzer's diagnostic:
    /// a `ClientHello` for one of these gets the typed rejection
    /// instead of "unknown model".
    rejected: HashMap<String, RejectionDetail>,
}

impl<B: FheBackend> Default for Registry<B> {
    fn default() -> Self {
        Self {
            models: HashMap::new(),
            rejected: HashMap::new(),
        }
    }
}

/// Everything a connection thread needs, shared behind an `Arc`.
struct Shared<B: FheBackend> {
    backend: Arc<B>,
    registry: RwLock<Registry<B>>,
    stats: Arc<ServerStats>,
    next_session: AtomicU64,
    config: ServerConfig,
    eval: EvalOptions,
    profile: BackendProfile,
    admission: AdmissionPolicy,
    cost: CostModel,
    /// Set by [`ServerHandle::shutdown`]: workers answer shed for
    /// queued jobs instead of evaluating them.
    draining: Arc<AtomicBool>,
    faults: Arc<ServerFaults>,
    /// The always-on ring of the last N per-query records.
    flight: Arc<FlightRecorder>,
}

impl<B: FheBackend> Drop for Shared<B> {
    fn drop(&mut self) {
        // A server dropped without an explicit shutdown must still
        // release its (detached) workers: closing every queue ends
        // each worker's recv loop.
        let registry = self
            .registry
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        for entry in registry.models.values() {
            entry.jobs.close();
        }
    }
}

impl<B: FheBackend> Shared<B> {
    /// Live queue gauges for the stats page: one row per deployed
    /// model (sorted), depth and capacity from the queue itself, shed
    /// count from the per-model counters.
    fn queue_gauges(&self, shed_by_model: &dyn Fn(&str) -> u64) -> Vec<ModelQueueDepth> {
        let registry = self.registry.read().unwrap_or_else(PoisonError::into_inner);
        let mut rows: Vec<ModelQueueDepth> = registry
            .models
            .values()
            .map(|entry| ModelQueueDepth {
                model: entry.name.clone(),
                depth: entry.jobs.len().min(u32::MAX as usize) as u32,
                capacity: entry.jobs.capacity().min(u32::MAX as usize) as u32,
                shed: shed_by_model(&entry.name),
            })
            .collect();
        rows.sort_by(|a, b| a.model.cmp(&b.model));
        rows
    }
}

/// Builds an [`InferenceServer`]: registry first, then `bind`.
pub struct ServerBuilder<B: FheBackend + 'static> {
    backend: Arc<B>,
    config: ServerConfig,
    eval: EvalOptions,
    /// `Some` once [`ServerBuilder::threads`] was called; applied to
    /// the eval options at [`ServerBuilder::bind`] so the override
    /// holds regardless of builder-call order.
    threads: Option<usize>,
    admission: AdmissionPolicy,
    faults: FaultPlan,
    pending: Vec<(String, Maurice, ModelForm)>,
}

impl<B: FheBackend + 'static> ServerBuilder<B> {
    /// Starts a builder over one backend (the query-key domain every
    /// registered model is deployed into).
    pub fn new(backend: Arc<B>) -> Self {
        Self {
            backend,
            config: ServerConfig::default(),
            eval: EvalOptions::default(),
            threads: None,
            admission: AdmissionPolicy::default(),
            faults: FaultPlan::default(),
            pending: Vec::new(),
        }
    }

    /// What to do when static analysis says a registered model cannot
    /// run on this backend (default: [`AdmissionPolicy::Reject`]).
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Overrides the scheduler configuration.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Injects the given seeded fault schedule into every accepted
    /// connection and the evaluation workers (chaos testing; the
    /// default plan injects nothing).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Evaluator options every model worker runs with. The
    /// `parallelism` field is overridden by [`ServerBuilder::threads`]
    /// when that knob is set (in either order — the override is
    /// applied at [`ServerBuilder::bind`]).
    pub fn eval_options(mut self, eval: EvalOptions) -> Self {
        self.eval = eval;
        self
    }

    /// Parallel degree for evaluation: every model worker's stage
    /// loops *and* the backend's FHE kernels fork up to `threads` ways
    /// onto the process-wide shared `copse-pool` runtime. The pool is
    /// shared, so several model workers evaluating concurrently
    /// contend for the same host cores instead of oversubscribing
    /// them. Results are bitwise identical for every value; `1` (the
    /// default) evaluates sequentially.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Compiles and registers a forest under `name`, deployed in the
    /// given form.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the COPSE compiler.
    pub fn register(
        self,
        name: impl Into<String>,
        forest: &Forest,
        options: CompileOptions,
        form: ModelForm,
    ) -> Result<Self, CompileError> {
        let maurice = Maurice::compile(forest, options)?;
        Ok(self.register_compiled(name, maurice, form))
    }

    /// Registers an already-compiled model under `name`.
    pub fn register_compiled(
        mut self,
        name: impl Into<String>,
        maurice: Maurice,
        form: ModelForm,
    ) -> Self {
        self.pending.push((name.into(), maurice, form));
        self
    }

    /// Analyzes, deploys, and spawns the evaluator worker for every
    /// registered model, then binds the listening socket (`port 0` =
    /// ephemeral).
    ///
    /// Each model is first run through `copse-analyze` against this
    /// backend's [`BackendProfile`]; under the default
    /// [`AdmissionPolicy::Reject`] a model the backend cannot evaluate
    /// is *not* deployed — clients that hello it receive a structured
    /// [`RejectionDetail`] — while [`AdmissionPolicy::Warn`] deploys
    /// it and surfaces the diagnostic on the stats page instead.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from `TcpListener::bind` and thread
    /// spawn failures.
    ///
    /// # Panics
    ///
    /// Panics if no model was registered or two models share a name.
    pub fn bind(mut self, addr: impl ToSocketAddrs) -> io::Result<InferenceServer<B>> {
        assert!(
            !self.pending.is_empty(),
            "an inference server needs at least one registered model"
        );
        // Kernel-level parallelism is a backend property (per-prime
        // rows, key-switch digit rows); the stage-level degree rides
        // in `eval.parallelism`. Both draw from the shared pool. The
        // `threads` knob, when set, overrides whatever `eval_options`
        // carried — applied here so builder-call order cannot matter —
        // and the stats always report the *effective* degree.
        if let Some(threads) = self.threads {
            self.eval.parallelism = copse_core::parallel::Parallelism { threads };
            self.backend.set_kernel_threads(threads);
        }
        let effective = self.eval.parallelism.threads.max(1);
        let profile = BackendProfile::of(self.backend.as_ref());
        let shared = Arc::new(Shared {
            backend: self.backend,
            registry: RwLock::new(Registry::default()),
            stats: Arc::new(ServerStats::with_threads(effective)),
            next_session: AtomicU64::new(1),
            config: self.config,
            eval: self.eval,
            profile,
            admission: self.admission,
            cost: CostModel::default(),
            draining: Arc::new(AtomicBool::new(false)),
            faults: Arc::new(ServerFaults::new(self.faults)),
            flight: Arc::new(FlightRecorder::new(self.config.flight_capacity)),
        });
        for (name, maurice, form) in self.pending {
            match deploy_model(&shared, name, maurice, form) {
                Ok(()) | Err(DeployError::Rejected(_)) => {}
                Err(DeployError::DuplicateName(name)) => {
                    panic!("model `{name}` registered twice")
                }
                Err(DeployError::Spawn(e)) => return Err(e),
            }
        }
        let listener = TcpListener::bind(addr)?;
        Ok(InferenceServer { shared, listener })
    }
}

/// Deploys one compiled model into a live registry: admission gate,
/// circuit summary for the stats page, `maurice.deploy` (which warms
/// the `EncodedMatrix` precompute caches so the first query pays no
/// transform cost), worker spawn, registry insert.
fn deploy_model<B: FheBackend + 'static>(
    shared: &Arc<Shared<B>>,
    name: String,
    maurice: Maurice,
    form: ModelForm,
) -> Result<(), DeployError> {
    {
        let registry = shared
            .registry
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        if registry.models.contains_key(&name) {
            return Err(DeployError::DuplicateName(name));
        }
    }
    // Deploy-time admission: the static analyzer knows the exact
    // circuit this model evaluates, so a model that would exhaust the
    // modulus chain mid-query or panic on a missing capability is
    // caught here — before a single ciphertext is touched — instead
    // of at first query.
    let report = CircuitReport::analyze(maurice.compiled(), &EvalShape::plan(&maurice, form));
    let issues = report.admit(&shared.profile);
    if let Some(issue) = issues.first() {
        if shared.admission == AdmissionPolicy::Reject {
            let detail = rejection_detail(&name, issue);
            let mut registry = shared
                .registry
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            registry.rejected.insert(name, detail.clone());
            return Err(DeployError::Rejected(detail));
        }
    }
    shared.stats.set_circuit(
        &name,
        CircuitSummary {
            depth: report.depth,
            depth_budget: shared.profile.depth_budget,
            ops_per_query: report.total_ops().total_homomorphic(),
            modeled_ms: report.modeled_ms(&shared.cost),
        },
    );
    let (jobs_tx, jobs_rx) = queue::bounded(shared.config.queue_capacity);
    let deployed = maurice.deploy(shared.backend.as_ref(), form);
    let info = maurice.public_query_info();
    let worker = spawn_worker(
        name.clone(),
        Arc::clone(&shared.backend),
        deployed,
        shared.eval,
        shared.config,
        jobs_rx,
        Arc::clone(&shared.stats),
        Arc::clone(&shared.draining),
        Arc::clone(&shared.faults),
    )
    .map_err(DeployError::Spawn)?;
    let entry = Arc::new(ModelEntry {
        name: name.clone(),
        form,
        info,
        jobs: jobs_tx,
        worker: Mutex::new(Some(worker)),
    });
    let mut registry = shared
        .registry
        .write()
        .unwrap_or_else(PoisonError::into_inner);
    if registry.models.contains_key(&name) {
        // Lost a deploy race for this name: tear down the worker we
        // just spawned (its queue never saw a job).
        entry.jobs.close();
        drop(registry);
        join_worker(&entry);
        return Err(DeployError::DuplicateName(name));
    }
    // A redeploy of a previously rejected name clears the stale
    // diagnostic — the new circuit just passed admission.
    registry.rejected.remove(&name);
    registry.models.insert(name, entry);
    Ok(())
}

/// Joins a model's worker thread (idempotent).
fn join_worker<B: FheBackend>(entry: &ModelEntry<B>) {
    let handle = entry
        .worker
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(handle) = handle {
        let _ = handle.join();
    }
}

/// Maps one analyzer verdict to its wire diagnostic.
fn rejection_detail(model: &str, issue: &AdmissionIssue) -> RejectionDetail {
    let (code, required, available) = match *issue {
        AdmissionIssue::DepthExceeded { required, budget } => (
            RejectionCode::DepthExceeded,
            u64::from(required),
            u64::from(budget),
        ),
        AdmissionIssue::SlotRotationUnsupported { rotations } => {
            (RejectionCode::SlotRotationUnsupported, rotations, 0)
        }
        AdmissionIssue::SlotCapacityExceeded {
            required,
            available,
        } => (
            RejectionCode::SlotCapacityExceeded,
            required as u64,
            available as u64,
        ),
    };
    RejectionDetail {
        model: model.to_string(),
        code,
        required,
        available,
    }
}

/// Human-readable form of a wire rejection diagnostic (the structured
/// fields survive alongside it for version-4 sessions).
fn rejection_text(detail: &RejectionDetail) -> String {
    match detail.code {
        RejectionCode::DepthExceeded => format!(
            "circuit depth {} exceeds the backend depth budget {}",
            detail.required, detail.available
        ),
        RejectionCode::SlotRotationUnsupported => format!(
            "circuit needs {} slot rotations but the backend has no slot structure",
            detail.required
        ),
        RejectionCode::SlotCapacityExceeded => format!(
            "circuit packs {}-slot operands but the backend has {} slots",
            detail.required, detail.available
        ),
    }
}

/// The message a worker answers a panicked evaluation with. A typed
/// [`BackendError`] payload (e.g. `rotate_slots` on the negacyclic
/// ring, reachable only under [`AdmissionPolicy::Warn`]) survives as
/// the same text the admission layer would have used — a clean typed
/// rejection, not a scraped panic string.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(e) = panic.downcast_ref::<BackendError>() {
        return format!("backend capability error: {e}");
    }
    panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "evaluation panicked".into())
}

/// Source of small distinct evaluator-worker ids: the `worker` field
/// every [`ServerTiming`] and [`FlightRecord`] carries, so an
/// operator can see which worker thread served (or shed) a query.
static NEXT_WORKER: AtomicU32 = AtomicU32::new(0);

/// Saturating `Duration` → nanoseconds for timing offsets.
fn saturating_nanos(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// A job plus the moment the worker popped it off the queue,
/// expressed (like every timing offset) relative to frame receipt.
struct Dequeued<B: FheBackend> {
    job: Job<B>,
    dequeue_nanos: u64,
}

/// Stamps a job's dequeue offset the moment it leaves the queue.
fn dequeued<B: FheBackend>(job: Job<B>) -> Dequeued<B> {
    let dequeue_nanos = saturating_nanos(job.received.elapsed());
    Dequeued { job, dequeue_nanos }
}

/// The timing record for a job as far as the worker knows it at
/// dequeue time; the evaluation path fills in the assembly/stage
/// fields and the connection thread stamps the encode offset.
fn dequeue_timing<B: FheBackend>(
    dq: &Dequeued<B>,
    cause: TimingCause,
    worker: u32,
) -> ServerTiming {
    ServerTiming {
        worker,
        cause,
        enqueue_nanos: dq.job.enqueue_nanos,
        dequeue_nanos: dq.dequeue_nanos,
        assembled_nanos: 0,
        stage_nanos: [0; 4],
        encode_nanos: 0,
        batch_size: 0,
        batch_peers: Vec::new(),
    }
}

/// Spawns the evaluator worker that owns one deployed model. The loop
/// blocks for the first job, coalesces more jobs for the batch
/// window, sheds what expired in the queue, then answers the whole
/// batch from one evaluation pass. The loop ends when the model's
/// queue is closed *and drained* (hot undeploy evaluates the backlog;
/// shutdown answers it with sheds via the draining flag).
#[allow(clippy::too_many_arguments)]
fn spawn_worker<B: FheBackend + 'static>(
    name: String,
    backend: Arc<B>,
    deployed: DeployedModel<B>,
    eval: EvalOptions,
    config: ServerConfig,
    jobs: queue::BoundedReceiver<Job<B>>,
    stats: Arc<ServerStats>,
    draining: Arc<AtomicBool>,
    faults: Arc<ServerFaults>,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("copse-model-{name}"))
        .spawn(move || {
            let worker_id = NEXT_WORKER.fetch_add(1, Ordering::Relaxed);
            let sally = Sally::with_options(backend.as_ref(), deployed, eval);
            // Tile the packed model eagerly (a no-op when the backend
            // cannot pack) so the first coalesced batch pays no
            // deploy-like tiling cost inside its evaluation pass.
            let _ = sally.warm_packed();
            while let Ok(first) = jobs.recv() {
                let mut batch = vec![dequeued(first)];
                let window = Stopwatch::start();
                while batch.len() < config.max_batch {
                    let left = window.remaining(config.batch_window);
                    match jobs.recv_timeout(left) {
                        Ok(job) => batch.push(dequeued(job)),
                        Err(_) => break,
                    }
                }
                if draining.load(Ordering::SeqCst) {
                    // Shutdown drain: every dequeued job gets an
                    // explicit client-visible shed — accepted work is
                    // answered, never dropped.
                    for dq in batch {
                        stats.record_shed(&name);
                        let timing = dequeue_timing(&dq, TimingCause::Shed, worker_id);
                        let _ = dq.job.reply.try_send(JobOutcome::Shed {
                            detail: ShedDetail {
                                model: name.clone(),
                                queue_depth: 0,
                                retry_after_ms: config.retry_after_ms,
                            },
                            timing,
                        });
                    }
                    continue;
                }
                // Deadline shed at dequeue: a job whose client budget
                // expired while it sat in the queue is answered with a
                // typed error and never evaluated — evaluating it
                // would burn worker time on an answer nobody awaits.
                let mut live = Vec::with_capacity(batch.len());
                for dq in batch {
                    let waited = dq.job.received.elapsed();
                    if dq.job.deadline_ms > 0
                        && waited >= Duration::from_millis(u64::from(dq.job.deadline_ms))
                    {
                        stats.record_expired(&name);
                        let waited_ms = waited.as_millis().min(u128::from(u64::MAX)) as u64;
                        let timing = dequeue_timing(&dq, TimingCause::Expired, worker_id);
                        let _ = dq
                            .job
                            .reply
                            .try_send(JobOutcome::Expired { waited_ms, timing });
                    } else {
                        live.push(dq);
                    }
                }
                if live.is_empty() {
                    continue;
                }
                // Queue wait ends the moment the pass starts: from
                // here on a query's time is evaluation time.
                let started = Stopwatch::start();
                let waits: Vec<Duration> = live
                    .iter()
                    .map(|dq| started.since(&dq.job.received))
                    .collect();
                let batch_size = live.len() as u32;
                // Batch attribution: each *traced* query learns which
                // other traced queries shared its pass (untraced peers
                // stay invisible — nothing about them leaves the
                // server). Untraced queries skip the allocation.
                let traced_peers: Vec<u64> = live.iter().filter_map(|dq| dq.job.trace).collect();
                let mut queries = Vec::with_capacity(live.len());
                let mut replies = Vec::with_capacity(live.len());
                let traces: Vec<Option<u64>> = live.iter().map(|dq| dq.job.trace).collect();
                for dq in live {
                    let mut timing = dequeue_timing(&dq, TimingCause::Served, worker_id);
                    timing.assembled_nanos = saturating_nanos(started.since(&dq.job.received));
                    timing.batch_size = batch_size;
                    if let Some(own) = dq.job.trace {
                        timing.batch_peers =
                            traced_peers.iter().copied().filter(|&p| p != own).collect();
                    }
                    queries.push(EncryptedQuery::from_planes(dq.job.planes));
                    replies.push((dq.job.reply, timing));
                }
                let outcome = {
                    let _span = copse_trace::span(format!("batch:{name}"));
                    // Per-query spans: a traced query's span brackets
                    // the whole pass, so the per-stage spans Sally
                    // opens nest inside it and stay attributable even
                    // in a coalesced batch. Closed in reverse so the
                    // B/E stream stays well nested (LIFO).
                    let mut query_spans: Vec<copse_trace::SpanGuard> = traces
                        .iter()
                        .flatten()
                        .map(|t| copse_trace::span(format!("query:{t:016x}")))
                        .collect();
                    // Injected slow-model stall: holds this worker (and
                    // therefore its queue) busy for a known window.
                    let eval_delay = faults.plan().eval_delay;
                    if !eval_delay.is_zero() {
                        std::thread::sleep(eval_delay);
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        if faults.take_worker_panic() {
                            panic!("injected fault: worker panic");
                        }
                        sally.classify_batch_traced(&queries)
                    }));
                    while query_spans.pop().is_some() {}
                    result
                };
                match outcome {
                    Ok((results, trace)) => {
                        stats.record_batch(&name, &trace, &waits, started.elapsed());
                        let stage_nanos = trace.stage_nanos();
                        for (i, ((reply, mut timing), result)) in
                            replies.into_iter().zip(results).enumerate()
                        {
                            timing.stage_nanos = stage_nanos;
                            let _ = reply.try_send(JobOutcome::Done {
                                ciphertext: result.into_ciphertext(),
                                timing,
                                packed_size: trace.packed_sizes.get(i).copied().unwrap_or(1),
                            });
                        }
                    }
                    // A poisoned query (e.g. a hand-crafted ciphertext
                    // with no evaluation headroom) must not fail the
                    // innocent queries coalesced with it: fall back to
                    // evaluating each query alone so only the poisoned
                    // one gets an error.
                    Err(_) => {
                        for (((reply, mut timing), query), wait) in
                            replies.into_iter().zip(queries).zip(waits)
                        {
                            let solo_started = Stopwatch::start();
                            let one =
                                catch_unwind(AssertUnwindSafe(|| sally.classify_traced(&query)));
                            // The failed joint pass demoted this query
                            // to a batch of one.
                            timing.batch_size = 1;
                            timing.batch_peers.clear();
                            match one {
                                Ok((result, trace)) => {
                                    // The failed joint pass counts as
                                    // queue time for the survivors:
                                    // they were still waiting for
                                    // their own answer.
                                    let wait = wait + solo_started.since(&started);
                                    stats.record_batch(
                                        &name,
                                        &trace,
                                        &[wait],
                                        solo_started.elapsed(),
                                    );
                                    timing.stage_nanos = trace.stage_nanos();
                                    let _ = reply.try_send(JobOutcome::Done {
                                        ciphertext: result.into_ciphertext(),
                                        timing,
                                        packed_size: 1,
                                    });
                                }
                                Err(panic) => {
                                    timing.cause = TimingCause::Failed;
                                    let _ = reply.try_send(JobOutcome::Failed {
                                        message: panic_message(panic.as_ref()),
                                        timing,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        })
}

/// A bound, not-yet-serving inference server.
pub struct InferenceServer<B: FheBackend + 'static> {
    shared: Arc<Shared<B>>,
    listener: TcpListener,
}

impl<B: FheBackend + 'static> InferenceServer<B> {
    /// The bound address (read the ephemeral port here).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared handle to the service counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Models refused at deploy time under
    /// [`AdmissionPolicy::Reject`], with the analyzer diagnostic each
    /// client will be shown (empty when everything deployed).
    pub fn rejections(&self) -> Vec<RejectionDetail> {
        let registry = self
            .shared
            .registry
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let mut all: Vec<_> = registry.rejected.values().cloned().collect();
        all.sort_by(|a, b| a.model.cmp(&b.model));
        all
    }

    /// Moves the server onto a background accept loop and returns a
    /// handle for shutdown and hot deploy/undeploy. Each accepted
    /// connection gets its own thread speaking the frame protocol.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from reading the bound address.
    pub fn spawn(self) -> io::Result<ServerHandle<B>> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = self.shared;
        let listener = self.listener;
        // Non-blocking accept so the loop observes the stop flag on
        // its own: shutdown must not depend on being able to open a
        // wake-up connection to the bound address (which fails for
        // wildcard binds on some platforms).
        listener.set_nonblocking(true)?;
        let accept_stop = Arc::clone(&stop);
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("copse-accept".into())
            .spawn(move || {
                // accept() returns transient errors under load
                // (ECONNABORTED from a peer resetting mid-handshake,
                // momentary fd exhaustion); those must not kill the
                // service. Only a sustained error streak — a genuinely
                // dead listener — ends the loop.
                let mut consecutive_errors = 0u32;
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            consecutive_errors = 0;
                            // The listener is non-blocking for the
                            // stop-flag poll; connection threads want
                            // plain blocking reads (bounded by the
                            // configured socket timeouts).
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            spawn_connection(&accept_shared, stream);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            // Nothing pending; poll the stop flag.
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => {
                            consecutive_errors += 1;
                            if consecutive_errors > 64 {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                }
            })?;
        Ok(ServerHandle {
            addr,
            stop,
            accept: Some(accept),
            shared,
        })
    }
}

/// Configures one accepted stream (timeouts, fault wrapping) and
/// hands it a detached connection thread. A spawn failure (thread
/// exhaustion) drops the stream — that client sees a hangup, the
/// service keeps accepting.
fn spawn_connection<B: FheBackend + 'static>(shared: &Arc<Shared<B>>, stream: TcpStream) {
    // Socket timeouts bound slow-loris sessions: a peer that stalls
    // mid-frame (or stops reading) is disconnected, and the timeout
    // is counted on the stats page.
    if stream.set_read_timeout(shared.config.read_timeout).is_err()
        || stream
            .set_write_timeout(shared.config.write_timeout)
            .is_err()
    {
        return;
    }
    let shared = Arc::clone(shared);
    // Detached: joining would make shutdown wait on idle clients, and
    // keeping every handle would grow without bound on a long-running
    // server. A connection thread's lifetime is bounded by its client
    // plus the socket timeouts.
    let _ = std::thread::Builder::new()
        .name("copse-conn".into())
        .spawn(move || {
            let served = if shared.faults.plan().wraps_streams() {
                match shared.faults.wrap(&stream) {
                    Ok((r, w)) => serve_connection(&shared, r, w),
                    Err(e) => Err(e),
                }
            } else {
                match stream.try_clone() {
                    Ok(clone) => serve_connection(&shared, clone, stream),
                    Err(e) => Err(e),
                }
            };
            if let Err(e) = served {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    shared.stats.record_conn_timeout();
                }
            }
        });
}

/// Clamps client-controlled text (a 64 KiB model name, a panic
/// message) so it always fits a wire string field — it must never be
/// able to trip the encoder's length assert and panic the connection
/// thread.
fn clamp_error_message(message: String) -> String {
    const MAX_ERROR_BYTES: usize = 1024;
    if message.len() <= MAX_ERROR_BYTES {
        message
    } else {
        let mut end = MAX_ERROR_BYTES;
        while !message.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &message[..end])
    }
}

/// Builds a plain (untimed) `Error` frame with a clamped message.
fn error_frame(message: String) -> Frame {
    Frame::Error {
        message: clamp_error_message(message),
        detail: None,
        timing: None,
    }
}

/// The client-facing form of a shed: version-5+ sessions get the
/// structured `Busy` frame, older sessions a plain `Error` carrying
/// the same facts as text (old decoders reject the Busy tag). The
/// timing record rides along for v6 traced queries; older session
/// encoders drop it.
fn shed_frame(
    session_version: u8,
    id: u64,
    detail: ShedDetail,
    timing: Option<ServerTiming>,
) -> Frame {
    if session_version >= 5 {
        Frame::Busy { id, detail, timing }
    } else {
        Frame::Error {
            message: clamp_error_message(format!(
                "model `{}` is overloaded (queue depth {}); retry in {} ms",
                detail.model, detail.queue_depth, detail.retry_after_ms
            )),
            detail: None,
            timing,
        }
    }
}

/// Serves one client connection until EOF, `Bye`, a socket timeout,
/// or an I/O error.
///
/// The connection answers at whatever wire version the client speaks:
/// every received frame reports its version byte, and every response
/// is encoded at the version of the last frame received. A version-2
/// client therefore never sees a version-3 byte (old decoders reject
/// any frame whose version is not their own), while current clients
/// get the full version-5 vocabulary (`Busy`, queue gauges).
fn serve_connection<B: FheBackend, R: Read, W: Write>(
    shared: &Shared<B>,
    reader: R,
    writer: W,
) -> io::Result<()> {
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(writer);
    let mut active_model: Option<Arc<ModelEntry<B>>> = None;
    loop {
        let (frame, session_version) = match read_frame_versioned(&mut reader) {
            Ok(got) => got,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let write_frame = |writer: &mut BufWriter<W>, frame: &Frame| -> io::Result<()> {
            write_frame_versioned(writer, frame, session_version)
        };
        match frame {
            Frame::ClientHello { model } => {
                let resolved = {
                    let registry = shared
                        .registry
                        .read()
                        .unwrap_or_else(PoisonError::into_inner);
                    match registry.models.get(&model) {
                        Some(entry) => Ok(Arc::clone(entry)),
                        None => Err(registry.rejected.get(&model).cloned()),
                    }
                };
                match resolved {
                    Ok(entry) => {
                        let session = shared.next_session.fetch_add(1, Ordering::Relaxed);
                        write_frame(
                            &mut writer,
                            &Frame::ServerHello {
                                session,
                                encrypted_model: entry.form == ModelForm::Encrypted,
                                info: entry.info.clone(),
                            },
                        )?;
                        active_model = Some(entry);
                    }
                    Err(rejection) => {
                        // A failed hello must not leave the previous
                        // session's model active: a client that
                        // ignores the error would silently get answers
                        // from the wrong model.
                        active_model = None;
                        let response = match rejection {
                            // The model exists but failed deploy-time
                            // admission: answer with the analyzer's
                            // typed diagnostic (version-4+ sessions
                            // get the structured detail; older
                            // sessions the text).
                            Some(detail) => Frame::Error {
                                message: format!(
                                    "model `{model}` was rejected at deploy: {}",
                                    rejection_text(&detail)
                                ),
                                detail: Some(detail),
                                timing: None,
                            },
                            None => error_frame(format!("unknown model `{model}`")),
                        };
                        write_frame(&mut writer, &response)?;
                    }
                }
            }
            Frame::ListModels => {
                let mut models: Vec<String> = {
                    let registry = shared
                        .registry
                        .read()
                        .unwrap_or_else(PoisonError::into_inner);
                    registry.models.keys().cloned().collect()
                };
                models.sort();
                write_frame(&mut writer, &Frame::ModelList { models })?;
            }
            Frame::Stats => {
                let mut snap = shared.stats.snapshot();
                let per_model = snap.per_model.clone();
                snap.queue_depths =
                    shared.queue_gauges(&|name: &str| per_model.get(name).map_or(0, |m| m.shed));
                write_frame(&mut writer, &snap.to_frame())?;
            }
            Frame::MetricsRequest => {
                // The pull-able Prometheus-style exposition: the
                // decoder only yields this frame on v6+ sessions, so
                // the v6-only MetricsReport below always encodes.
                let mut snap = shared.stats.snapshot();
                let per_model = snap.per_model.clone();
                snap.queue_depths =
                    shared.queue_gauges(&|name: &str| per_model.get(name).map_or(0, |m| m.shed));
                let text = crate::metrics::render_exposition(&snap, &shared.flight);
                write_frame(&mut writer, &Frame::MetricsReport { text })?;
            }
            Frame::Query {
                id,
                deadline_ms,
                trace,
                planes,
            } => {
                // The clock origin of every relative offset this query
                // reports, fixed as close to frame receipt as the
                // connection thread can manage.
                let received = Stopwatch::start();
                let response = handle_query(
                    shared,
                    active_model.as_ref(),
                    session_version,
                    id,
                    deadline_ms,
                    trace,
                    &planes,
                    received,
                );
                write_frame(&mut writer, &response)?;
            }
            Frame::Bye => {
                write_frame(&mut writer, &Frame::Bye)?;
                return Ok(());
            }
            other => {
                write_frame(
                    &mut writer,
                    &error_frame(format!(
                        "unexpected frame tag {:#04x} from a client",
                        other.tag()
                    )),
                )?;
            }
        }
    }
}

/// How one query ended, before the timing record is stamped onto the
/// outgoing frame — the single funnel [`handle_query`] answers
/// through, so the flight recorder sees every outcome class.
enum Answer {
    Served { ciphertext: Bytes },
    Error { message: String },
    Shed { detail: ShedDetail },
}

/// A timing record for a query that never reached a worker (rejected
/// by validation, shed at enqueue, or orphaned by a dropped worker).
fn local_timing(cause: TimingCause, enqueue_nanos: u64) -> ServerTiming {
    ServerTiming {
        worker: u32::MAX,
        cause,
        enqueue_nanos,
        dequeue_nanos: 0,
        assembled_nanos: 0,
        stage_nanos: [0; 4],
        encode_nanos: 0,
        batch_size: 0,
        batch_peers: Vec::new(),
    }
}

/// Validates, enqueues, and awaits one query; never panics the
/// connection — every failure becomes an `Error` (or `Busy`) frame.
/// Every outcome (served, shed, expired, failed) lands in the flight
/// recorder, and clients that sent a trace id get the per-query
/// [`ServerTiming`] record on whatever frame answers them.
#[allow(clippy::too_many_arguments)]
fn handle_query<B: FheBackend>(
    shared: &Shared<B>,
    active_model: Option<&Arc<ModelEntry<B>>>,
    session_version: u8,
    id: u64,
    deadline_ms: u32,
    trace: Option<u64>,
    planes: &[Bytes],
    received: Stopwatch,
) -> Frame {
    // Every exit funnels through here: stamp the final encode offset,
    // record the query's flight entry, and attach the timing record
    // only for clients that asked to be traced (pre-v6 sessions
    // cannot ask, and their encoders drop the field besides — belt
    // and suspenders against leaking timing to old peers).
    let finish =
        |model: &str, mut timing: ServerTiming, packed_size: u32, answer: Answer| -> Frame {
            timing.encode_nanos = saturating_nanos(received.elapsed());
            shared.flight.record(FlightRecord {
                seq: 0,
                trace_id: trace,
                query_id: id,
                model: model.to_string(),
                cause: timing.cause,
                queue_nanos: if timing.assembled_nanos > 0 {
                    timing.assembled_nanos
                } else {
                    timing.dequeue_nanos
                },
                eval_nanos: timing.stage_nanos.iter().sum(),
                total_nanos: timing.encode_nanos,
                batch_size: timing.batch_size,
                packed_size,
                worker: timing.worker,
                faults_seen: shared.faults.injected(),
            });
            let batch_size = timing.batch_size;
            let timing = trace.map(|_| timing);
            match answer {
                Answer::Served { ciphertext } => Frame::Result {
                    id,
                    batch_size,
                    ciphertext,
                    timing,
                },
                Answer::Error { message } => Frame::Error {
                    message: clamp_error_message(message),
                    detail: None,
                    timing,
                },
                Answer::Shed { detail } => shed_frame(session_version, id, detail, timing),
            }
        };
    let fail = |model: &str, message: String| -> Frame {
        finish(
            model,
            local_timing(TimingCause::Failed, 0),
            0,
            Answer::Error { message },
        )
    };
    let Some(entry) = active_model else {
        return fail("", "no session: send ClientHello first".into());
    };
    if planes.len() != entry.info.precision as usize {
        return fail(
            &entry.name,
            format!(
                "query has {} planes, model `{}` needs {}",
                planes.len(),
                entry.name,
                entry.info.precision
            ),
        );
    }
    let expected_width = entry.info.feature_count * entry.info.max_multiplicity;
    let mut decoded = Vec::with_capacity(planes.len());
    for (i, plane) in planes.iter().enumerate() {
        match shared.backend.deserialize_ciphertext(plane) {
            Ok(ct) => {
                let width = shared.backend.width(&ct);
                if width != expected_width {
                    return fail(
                        &entry.name,
                        format!("plane {i} is {width} slots wide, expected {expected_width}"),
                    );
                }
                decoded.push(ct);
            }
            Err(e) => return fail(&entry.name, format!("plane {i}: {e}")),
        }
    }
    let (reply_tx, reply_rx) = queue::bounded(1);
    let enqueue_nanos = saturating_nanos(received.elapsed());
    let job = Job {
        planes: decoded,
        deadline_ms: deadline_ms.min(MAX_DEADLINE_MS),
        trace,
        reply: reply_tx,
        received,
        enqueue_nanos,
    };
    match entry.jobs.try_send(job) {
        Ok(()) => {}
        // The load-shed decision point: a full queue answers *now*
        // with the overload facts instead of queueing unbounded work.
        Err(TrySendError::Full(_)) => {
            shared.stats.record_shed(&entry.name);
            return finish(
                &entry.name,
                local_timing(TimingCause::Shed, enqueue_nanos),
                0,
                Answer::Shed {
                    detail: ShedDetail {
                        model: entry.name.clone(),
                        queue_depth: entry.jobs.len().min(u32::MAX as usize) as u32,
                        retry_after_ms: shared.config.retry_after_ms,
                    },
                },
            );
        }
        Err(TrySendError::Closed(_)) => {
            if shared.draining.load(Ordering::SeqCst) {
                shared.stats.record_shed(&entry.name);
                return finish(
                    &entry.name,
                    local_timing(TimingCause::Shed, enqueue_nanos),
                    0,
                    Answer::Shed {
                        detail: ShedDetail {
                            model: entry.name.clone(),
                            queue_depth: 0,
                            retry_after_ms: shared.config.retry_after_ms,
                        },
                    },
                );
            }
            return fail(
                &entry.name,
                format!("model `{}` was undeployed", entry.name),
            );
        }
    }
    match reply_rx.recv() {
        Ok(JobOutcome::Done {
            ciphertext,
            timing,
            packed_size,
        }) => finish(
            &entry.name,
            timing,
            packed_size,
            Answer::Served {
                ciphertext: Bytes::from(shared.backend.serialize_ciphertext(&ciphertext)),
            },
        ),
        Ok(JobOutcome::Failed { message, timing }) => {
            finish(&entry.name, timing, 0, Answer::Error { message })
        }
        Ok(JobOutcome::Expired { waited_ms, timing }) => finish(
            &entry.name,
            timing,
            0,
            Answer::Error {
                message: format!(
                    "deadline of {deadline_ms} ms expired after {waited_ms} ms in queue; \
                     the query was not evaluated"
                ),
            },
        ),
        Ok(JobOutcome::Shed { detail, timing }) => {
            finish(&entry.name, timing, 0, Answer::Shed { detail })
        }
        Err(_) => fail(&entry.name, "evaluation worker dropped the job".into()),
    }
}

/// Handle to a serving inference server: shutdown, stats, and hot
/// model deploy/undeploy.
pub struct ServerHandle<B: FheBackend + 'static> {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    shared: Arc<Shared<B>>,
}

impl<B: FheBackend + 'static> ServerHandle<B> {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the service counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Shared handle to the always-on flight recorder (dump it any
    /// time with [`FlightRecorder::dump`]; [`ServerHandle::shutdown`]
    /// returns the final dump).
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.shared.flight)
    }

    /// Names of the currently deployed models (sorted).
    pub fn models(&self) -> Vec<String> {
        let registry = self
            .shared
            .registry
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        let mut names: Vec<String> = registry.models.keys().cloned().collect();
        names.sort();
        names
    }

    /// Hot-deploys a compiled model onto the live server, through the
    /// same `copse-analyze` admission gate as `bind`-time
    /// registration and with the same `EncodedMatrix` precompute
    /// warming — the first query pays no transform cost. Existing
    /// sessions are untouched; new hellos see the model immediately.
    ///
    /// # Errors
    ///
    /// [`DeployError::Rejected`] when admission refuses the circuit
    /// (the diagnostic is also recorded for clients that hello it),
    /// [`DeployError::DuplicateName`] when the name is already
    /// serving, [`DeployError::Spawn`] on thread exhaustion.
    pub fn deploy(
        &self,
        name: impl Into<String>,
        maurice: Maurice,
        form: ModelForm,
    ) -> Result<(), DeployError> {
        deploy_model(&self.shared, name.into(), maurice, form)
    }

    /// Compiles a forest and hot-deploys it (convenience wrapper over
    /// [`ServerHandle::deploy`]).
    ///
    /// # Errors
    ///
    /// The outer `Err` is a [`CompileError`] (the forest never reached
    /// admission); the inner result is [`ServerHandle::deploy`]'s.
    pub fn deploy_forest(
        &self,
        name: impl Into<String>,
        forest: &Forest,
        options: CompileOptions,
        form: ModelForm,
    ) -> Result<Result<(), DeployError>, CompileError> {
        let maurice = Maurice::compile(forest, options)?;
        Ok(self.deploy(name, maurice, form))
    }

    /// Hot-undeploys a model: removes it from the registry (new
    /// hellos get "unknown model"), closes its queue, **drains** —
    /// every already-accepted job is still evaluated and answered —
    /// then joins the worker. Sessions still helloed to it get a
    /// typed "undeployed" error on their next query.
    ///
    /// Returns `false` when no such model was deployed (a recorded
    /// rejection under that name is cleared either way).
    pub fn undeploy(&self, name: &str) -> bool {
        let entry = {
            let mut registry = self
                .shared
                .registry
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            registry.rejected.remove(name);
            registry.models.remove(name)
        };
        let Some(entry) = entry else {
            return false;
        };
        // Close-then-join is the drain: the queue refuses new work
        // but the worker still sees everything accepted before the
        // close, evaluates it, and only then exits.
        entry.jobs.close();
        join_worker(&entry);
        true
    }

    /// Stops accepting connections, **drains** the service, and joins
    /// the accept loop and every worker. Draining means: in-flight
    /// evaluation passes finish and answer normally; jobs still
    /// queued are answered with an explicit shed (`Busy`/`Error`) —
    /// no accepted query is silently dropped. Open connections keep
    /// their (detached) threads until their clients hang up or their
    /// socket timeouts fire.
    ///
    /// Returns the flight recorder's final dump (oldest record first)
    /// — the last moments of the service, preserved for post-mortems
    /// instead of dying with the process.
    pub fn shutdown(mut self) -> Vec<FlightRecord> {
        self.stop.store(true, Ordering::SeqCst);
        // From here on, dequeued jobs are shed rather than evaluated
        // (the batch already being evaluated still completes).
        self.shared.draining.store(true, Ordering::SeqCst);
        let entries: Vec<Arc<ModelEntry<B>>> = {
            let registry = self
                .shared
                .registry
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            registry.models.values().map(Arc::clone).collect()
        };
        for entry in &entries {
            entry.jobs.close();
        }
        for entry in &entries {
            join_worker(entry);
        }
        // The accept loop polls the flag (non-blocking listener), so
        // this join is bounded; the throwaway connect just shortcuts
        // the poll interval when the address is self-connectable.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.shared.flight.dump()
    }
}
