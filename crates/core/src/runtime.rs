//! The COPSE runtime: parties and the vectorized inference algorithm.
//!
//! Three notional parties cooperate (paper §3.1):
//!
//! * [`Maurice`] owns the model. He compiles it and *deploys* it — in
//!   plaintext when he also operates the server, or encrypted when he
//!   offloads (paper §8.3).
//! * [`Diane`] owns feature vectors. She replicates each feature to the
//!   revealed maximum multiplicity `K`, bit-slices, encrypts, and later
//!   decrypts the returned N-hot classification bitvector.
//! * [`Sally`] owns compute. She evaluates Algorithm 1 over encrypted
//!   queries: SecComp → reshuffle MatMul → per-level MatMul ⊕ mask →
//!   accumulation product.
//!
//! All stages run over any [`FheBackend`]; per-stage timings and
//! operation counts can be captured with
//! [`Sally::classify_traced`] (the Figure 10 breakdowns).

use crate::artifacts::{CompiledModel, ModelMeta};
use crate::compiler::{self, Accumulation, CompileOptions};
use crate::complexity::{ours, CostInputs};
use crate::matmul::{
    mat_vec, mat_vec_packed, tile_operand, EncodedMatrix, MatMulOptions, PackedMatrix,
};
use crate::parallel::{map_indices, Parallelism};
use crate::seccomp::{secure_less_than, SecCompVariant};
use copse_fhe::{BitSliced, BitVec, FheBackend, MaybeEncrypted, OpCounts, OpMeter};
use copse_forest::model::Forest;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

pub use crate::compiler::CompileError;

/// Whether model artifacts are deployed in plaintext or encrypted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelForm {
    /// The evaluator sees the model (Maurice = Sally; paper Fig. 9
    /// "plaintext models").
    Plain,
    /// The model is encrypted under the query key (Maurice offloads).
    Encrypted,
}

/// Cross-query slot packing policy.
///
/// When the backend reports a slot capacity wide enough for several
/// query blocks, Sally can evaluate `k` queries per ciphertext: every
/// stage runs once per *chunk* instead of once per query, and results
/// split back out at decode time via the backend's cached slot-range
/// masks. Decoded results are bitwise identical to the sequential path
/// (the parity battery in `tests/packing_props.rs` enforces this).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PackingMode {
    /// Pack whenever [`Sally::pack_plan`] finds room: the backend has
    /// a slot capacity of at least two query strides, supports slot
    /// rotation, and has one level of depth headroom for the unpack
    /// mask. Backends without a capacity (clear-unbounded, negacyclic)
    /// transparently fall through to the stage-major path.
    #[default]
    Auto,
    /// Never pack; batches run stage-major over per-query ciphertexts
    /// (the pre-packing behaviour, kept as the benchmark baseline).
    Off,
}

/// Evaluator options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalOptions {
    /// Threading for every stage.
    pub parallelism: Parallelism,
    /// Cross-query slot packing policy for batches.
    pub packing: PackingMode,
    /// MatMul kernel options (sparse-diagonal ablation).
    pub matmul: MatMulOptions,
    /// SecComp strategy (paper-parity ladder by default; shared-prefix
    /// scan as an ablation).
    pub comparator: SecCompVariant,
    /// When set, Sally applies a secret random permutation to the
    /// result vector (one extra plaintext MatMul) and hands clients a
    /// correspondingly permuted codebook, hiding the label order of
    /// the forest's leaves (paper §7.2.2's shuffling countermeasure;
    /// off by default, as in the paper's evaluation).
    pub shuffle_seed: Option<u64>,
}

/// Errors when Diane prepares a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Wrong number of features.
    FeatureCountMismatch {
        /// Features the model expects.
        expected: usize,
        /// Features supplied.
        got: usize,
    },
    /// A feature value exceeds the model precision.
    FeatureOverflow {
        /// Offending value.
        value: u64,
        /// Model precision in bits.
        precision: u32,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::FeatureCountMismatch { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            QueryError::FeatureOverflow { value, precision } => {
                write!(f, "feature value {value} does not fit in {precision} bits")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The model owner: compiles and deploys forests.
#[derive(Clone, Debug)]
pub struct Maurice {
    compiled: CompiledModel,
    accumulation: Accumulation,
}

impl Maurice {
    /// Compiles a trained forest (paper §5).
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] from the compiler.
    pub fn compile(forest: &Forest, options: CompileOptions) -> Result<Self, CompileError> {
        Ok(Self {
            compiled: compiler::compile(forest, options)?,
            accumulation: options.accumulation,
        })
    }

    /// Wraps an already-compiled model (used by programs emitted by
    /// the staging back-end, which embed artifacts as literals).
    pub fn from_compiled(compiled: CompiledModel, accumulation: Accumulation) -> Self {
        Self {
            compiled,
            accumulation,
        }
    }

    /// The compiled artifacts (inspection/codegen).
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    /// The accumulation strategy evaluation will use — the one piece
    /// of the evaluation plan Maurice fixes at compile time. Static
    /// analysis (`copse-analyze`) reads it to pick the right depth
    /// formula for the final product stage.
    pub fn accumulation(&self) -> Accumulation {
        self.accumulation
    }

    /// What Maurice must reveal for queries to be formed: `K`, the
    /// feature count, precision, and the result codebook (paper steps
    /// 0 and 4; §7.2 discusses exactly what this leaks).
    pub fn public_query_info(&self) -> QueryInfo {
        QueryInfo {
            max_multiplicity: self.compiled.meta.max_multiplicity,
            feature_count: self.compiled.meta.feature_count,
            precision: self.compiled.meta.precision,
            n_leaves: self.compiled.meta.n_leaves,
            label_names: self.compiled.meta.label_names.clone(),
            codebook: self.compiled.codebook.clone(),
        }
    }

    /// Encodes (plain) or encrypts (offloaded) every artifact for the
    /// evaluator. Encryption costs `p + q + d·(b+1)` Encrypt
    /// operations, the paper's Table 1d.
    pub fn deploy<B: FheBackend>(&self, backend: &B, form: ModelForm) -> DeployedModel<B> {
        let m = &self.compiled;
        let wrap_vec = |bits: &BitVec| -> MaybeEncrypted<B> {
            match form {
                ModelForm::Plain => MaybeEncrypted::Plain(backend.encode(bits)),
                ModelForm::Encrypted => MaybeEncrypted::Encrypted(backend.encrypt_bits(bits)),
            }
        };
        let wrap_matrix = |matrix| match form {
            ModelForm::Plain => EncodedMatrix::encode_plain(backend, matrix),
            ModelForm::Encrypted => EncodedMatrix::encrypt(backend, matrix),
        };
        DeployedModel {
            form,
            meta: m.meta.clone(),
            codebook: m.codebook.clone(),
            thresholds: m.thresholds.planes().iter().map(&wrap_vec).collect(),
            reshuffle: if m.fused {
                None
            } else {
                Some(wrap_matrix(&m.reshuffle))
            },
            levels: m.levels.iter().map(wrap_matrix).collect(),
            masks: m.masks.iter().map(&wrap_vec).collect(),
            accumulation: self.accumulation,
        }
    }
}

/// A model ready for evaluation on a specific backend.
#[derive(Debug)]
pub struct DeployedModel<B: FheBackend> {
    form: ModelForm,
    meta: ModelMeta,
    codebook: Vec<usize>,
    thresholds: Vec<MaybeEncrypted<B>>,
    reshuffle: Option<EncodedMatrix<B>>,
    levels: Vec<EncodedMatrix<B>>,
    masks: Vec<MaybeEncrypted<B>>,
    accumulation: Accumulation,
}

impl<B: FheBackend> Clone for DeployedModel<B> {
    fn clone(&self) -> Self {
        Self {
            form: self.form,
            meta: self.meta.clone(),
            codebook: self.codebook.clone(),
            thresholds: self.thresholds.clone(),
            reshuffle: self.reshuffle.clone(),
            levels: self.levels.clone(),
            masks: self.masks.clone(),
            accumulation: self.accumulation,
        }
    }
}

impl<B: FheBackend> DeployedModel<B> {
    /// Deployment form.
    pub fn form(&self) -> ModelForm {
        self.form
    }

    /// Model shape metadata.
    pub fn meta(&self) -> &ModelMeta {
        &self.meta
    }
}

/// Public information Diane needs to form queries and read results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryInfo {
    /// Revealed maximum feature multiplicity `K`.
    pub max_multiplicity: usize,
    /// Feature-space size.
    pub feature_count: usize,
    /// Fixed-point precision.
    pub precision: u32,
    /// Width of the classification bitvector.
    pub n_leaves: usize,
    /// Label alphabet.
    pub label_names: Vec<String>,
    /// Label index per result slot (paper §7.2.2's codebook).
    pub codebook: Vec<usize>,
}

/// An encrypted inference query: `p` bit planes of the replicated
/// feature vector.
#[derive(Debug)]
pub struct EncryptedQuery<B: FheBackend> {
    planes: Vec<B::Ciphertext>,
}

/// An encrypted classification result (N-hot over leaves).
#[derive(Debug)]
pub struct EncryptedResult<B: FheBackend> {
    ct: B::Ciphertext,
}

impl<B: FheBackend> Clone for EncryptedQuery<B> {
    fn clone(&self) -> Self {
        Self {
            planes: self.planes.clone(),
        }
    }
}

impl<B: FheBackend> Clone for EncryptedResult<B> {
    fn clone(&self) -> Self {
        Self {
            ct: self.ct.clone(),
        }
    }
}

impl<B: FheBackend> EncryptedQuery<B> {
    /// Reassembles a query from its `p` bit-plane ciphertexts (the
    /// transport path: planes arrive serialised over the wire).
    pub fn from_planes(planes: Vec<B::Ciphertext>) -> Self {
        Self { planes }
    }

    /// The query's bit-plane ciphertexts, MSB first.
    pub fn planes(&self) -> &[B::Ciphertext] {
        &self.planes
    }
}

impl<B: FheBackend> EncryptedResult<B> {
    /// The raw result ciphertext.
    pub fn ciphertext(&self) -> &B::Ciphertext {
        &self.ct
    }

    /// Wraps a result ciphertext received over the wire.
    pub fn from_ciphertext(ct: B::Ciphertext) -> Self {
        Self { ct }
    }

    /// Unwraps the result ciphertext without copying it.
    pub fn into_ciphertext(self) -> B::Ciphertext {
        self.ct
    }
}

/// The data owner.
#[derive(Debug)]
pub struct Diane<'b, B: FheBackend> {
    backend: &'b B,
    info: QueryInfo,
}

impl<'b, B: FheBackend> Diane<'b, B> {
    /// Creates a data owner from the revealed query information.
    pub fn new(backend: &'b B, info: QueryInfo) -> Self {
        Self { backend, info }
    }

    /// The query information in use.
    pub fn info(&self) -> &QueryInfo {
        &self.info
    }

    /// Replicates, bit-slices and encrypts a feature vector (paper
    /// step 0). Costs `p` Encrypt operations (one per bit plane).
    ///
    /// # Errors
    ///
    /// Rejects wrong feature counts and values exceeding the model
    /// precision.
    pub fn encrypt_features(&self, features: &[u64]) -> Result<EncryptedQuery<B>, QueryError> {
        if features.len() != self.info.feature_count {
            return Err(QueryError::FeatureCountMismatch {
                expected: self.info.feature_count,
                got: features.len(),
            });
        }
        let p = self.info.precision;
        if p < 64 {
            if let Some(&value) = features.iter().find(|&&v| v >= (1u64 << p)) {
                return Err(QueryError::FeatureOverflow {
                    value,
                    precision: p,
                });
            }
        }
        let replicated = compiler::replicate_features(features, self.info.max_multiplicity);
        let sliced = BitSliced::from_values(&replicated, p);
        Ok(EncryptedQuery {
            planes: sliced
                .planes()
                .iter()
                .map(|plane| self.backend.encrypt_bits(plane))
                .collect(),
        })
    }

    /// Decrypts and decodes a classification result.
    pub fn decrypt_result(&self, result: &EncryptedResult<B>) -> ClassificationOutcome {
        let raw = self.backend.decrypt(&result.ct);
        let leaf_hits = if raw.width() > self.info.n_leaves {
            raw.truncate(self.info.n_leaves)
        } else {
            raw
        };
        ClassificationOutcome {
            leaf_hits,
            label_names: self.info.label_names.clone(),
            codebook: self.info.codebook.clone(),
        }
    }
}

/// A decoded classification: the N-hot leaf bitvector plus the
/// codebook needed to read it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassificationOutcome {
    leaf_hits: BitVec,
    label_names: Vec<String>,
    codebook: Vec<usize>,
}

impl ClassificationOutcome {
    /// The raw N-hot bitvector (one bit per leaf; `N` = tree count).
    pub fn leaf_hits(&self) -> &BitVec {
        &self.leaf_hits
    }

    /// Indices of the selected leaves.
    pub fn selected_leaves(&self) -> Vec<usize> {
        self.leaf_hits.iter_ones().collect()
    }

    /// Votes per label, in label order.
    pub fn vote_counts(&self) -> Vec<usize> {
        let mut votes = vec![0usize; self.label_names.len()];
        for leaf in self.leaf_hits.iter_ones() {
            votes[self.codebook[leaf]] += 1;
        }
        votes
    }

    /// The plurality-vote label (ties break to the smaller label
    /// index); `None` if no leaf was selected.
    pub fn plurality_label(&self) -> Option<&str> {
        let votes = self.vote_counts();
        let (best, &count) = votes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &v)| (v, usize::MAX - i))?;
        (count > 0).then(|| self.label_names[best].as_str())
    }
}

/// The packed-batch layout Sally settled on for her backend + model +
/// options triple (see [`Sally::pack_plan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackPlan {
    /// Slots per query block: the widest operand any pipeline stage
    /// touches (mirrors the analyzer's `min_slot_capacity`).
    pub stride: usize,
    /// Queries per packed ciphertext: `slot_capacity / stride`.
    pub lanes: usize,
}

/// Per-stage measurements from one traced inference.
#[derive(Clone, Debug, Default)]
pub struct EvalTrace {
    /// SecComp (paper step 1).
    pub comparison: StageReport,
    /// Reshuffle MatMul (step 2); zeroed when fused.
    pub reshuffle: StageReport,
    /// All level MatMuls and mask XORs (step 3).
    pub levels: StageReport,
    /// Accumulation product (step 4).
    pub accumulate: StageReport,
    /// Packed-batch lane occupancy per query, in query order: how many
    /// queries shared that query's ciphertexts (1 = a solo remainder
    /// chunk). Empty when the packed path never engaged and the batch
    /// ran stage-major over per-query ciphertexts.
    pub packed_sizes: Vec<u32>,
}

impl EvalTrace {
    /// Wall-clock total over the four stages.
    pub fn total_duration(&self) -> Duration {
        self.comparison.duration
            + self.reshuffle.duration
            + self.levels.duration
            + self.accumulate.duration
    }

    /// Per-stage wall-clock as nanoseconds, in pipeline order
    /// (comparison, reshuffle, levels, accumulate) — the shape the
    /// wire-level `ServerTiming` record carries.
    pub fn stage_nanos(&self) -> [u64; 4] {
        let nanos = |d: Duration| d.as_nanos().min(u128::from(u64::MAX)) as u64;
        [
            nanos(self.comparison.duration),
            nanos(self.reshuffle.duration),
            nanos(self.levels.duration),
            nanos(self.accumulate.duration),
        ]
    }

    /// Operation totals over the four stages.
    pub fn total_ops(&self) -> OpCounts {
        self.comparison
            .ops
            .plus(&self.reshuffle.ops)
            .plus(&self.levels.ops)
            .plus(&self.accumulate.ops)
    }
}

/// Timing and operation counts for one pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageReport {
    /// Wall-clock time.
    pub duration: Duration,
    /// Homomorphic operations performed.
    pub ops: OpCounts,
}

/// Sally's secret result permutation (paper §7.2.2): the matrix that
/// scrambles the N-hot result and the permutation used to scramble the
/// codebook handed to clients.
#[derive(Debug)]
struct ResultShuffle<B: FheBackend> {
    /// `permutation[old] = new`: result slot `old` moves to `new`.
    permutation: Vec<usize>,
    matrix: EncodedMatrix<B>,
}

/// Model artifacts tiled for the packed-batch layout: every operand
/// repeats at block offsets `0, stride, 2·stride, …`, so each stage's
/// homomorphic ops apply to all packed queries at once. Built lazily
/// (first packed batch) or eagerly ([`Sally::warm_packed`]), then
/// cached for the lifetime of the `Sally`.
#[derive(Debug)]
struct PackedModel<B: FheBackend> {
    thresholds: Vec<MaybeEncrypted<B>>,
    reshuffle: Option<PackedMatrix<B>>,
    levels: Vec<PackedMatrix<B>>,
    masks: Vec<MaybeEncrypted<B>>,
    shuffle: Option<PackedMatrix<B>>,
}

/// The evaluator.
#[derive(Debug)]
pub struct Sally<'b, B: FheBackend> {
    backend: &'b B,
    model: DeployedModel<B>,
    options: EvalOptions,
    shuffle: Option<ResultShuffle<B>>,
    packed: OnceLock<PackedModel<B>>,
}

impl<'b, B: FheBackend> Sally<'b, B> {
    /// Hosts a deployed model with default (sequential) options.
    pub fn host(backend: &'b B, model: DeployedModel<B>) -> Self {
        Self::with_options(backend, model, EvalOptions::default())
    }

    /// Hosts a deployed model with explicit evaluator options.
    pub fn with_options(backend: &'b B, model: DeployedModel<B>, options: EvalOptions) -> Self {
        let shuffle = options.shuffle_seed.map(|seed| {
            let n = model.meta.n_leaves;
            let permutation = random_permutation(n, seed);
            let mut matrix = crate::artifacts::BoolMatrix::zeros(n, n);
            for (old, &new) in permutation.iter().enumerate() {
                matrix.set(new, old, true);
            }
            ResultShuffle {
                permutation,
                // Sally's own permutation stays plaintext regardless of
                // the model form: it is her secret, not Maurice's.
                matrix: EncodedMatrix::encode_plain(backend, &matrix),
            }
        });
        Self {
            backend,
            model,
            options,
            shuffle,
            packed: OnceLock::new(),
        }
    }

    /// The query information Sally forwards to clients: Maurice's
    /// public reveal, with the codebook permuted when result shuffling
    /// is enabled (so clients decode correctly but learn nothing about
    /// the forest's leaf-label order; paper §7.2.2).
    pub fn client_query_info(&self) -> QueryInfo {
        let meta = &self.model.meta;
        let mut codebook = self.model.codebook.clone();
        if let Some(shuffle) = &self.shuffle {
            let mut permuted = vec![0usize; codebook.len()];
            for (old, &new) in shuffle.permutation.iter().enumerate() {
                permuted[new] = codebook[old];
            }
            codebook = permuted;
        }
        QueryInfo {
            max_multiplicity: meta.max_multiplicity,
            feature_count: meta.feature_count,
            precision: meta.precision,
            n_leaves: meta.n_leaves,
            label_names: meta.label_names.clone(),
            codebook,
        }
    }

    /// The hosted model.
    pub fn model(&self) -> &DeployedModel<B> {
        &self.model
    }

    /// Evaluator options.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// The cross-query packing layout batches will use, or `None` when
    /// packing cannot engage: packing is [`PackingMode::Off`], the
    /// backend reports no slot capacity (clear-unbounded, negacyclic)
    /// or no slot rotation, fewer than two query strides fit, or the
    /// depth budget lacks the one extra level the unpack mask costs.
    /// All of those fall through to the stage-major batch path — the
    /// caller never has to care.
    pub fn pack_plan(&self) -> Option<PackPlan> {
        if self.options.packing == PackingMode::Off {
            return None;
        }
        let capacity = self.backend.slot_capacity()?;
        if !self.backend.supports_slot_rotation() {
            return None;
        }
        let stride = self.packed_stride();
        if stride == 0 {
            return None;
        }
        let lanes = capacity / stride;
        if lanes < 2 {
            return None;
        }
        // Splitting results back out multiplies by a block mask, so the
        // packed circuit is one level deeper than the sequential one.
        let m = &self.model;
        let inputs = CostInputs {
            comparator: self.options.comparator,
            ..CostInputs::from_meta(&m.meta, m.form, m.reshuffle.is_none(), m.accumulation)
        };
        let depth = ours::classify_depth(&inputs) + u32::from(self.shuffle.is_some()) + 1;
        (depth <= self.backend.depth_budget()).then_some(PackPlan { stride, lanes })
    }

    /// Slots one packed query block must span: the widest operand any
    /// stage touches (query planes, decision/branch vectors, matrix
    /// rows and columns, masks, the result). Mirrors the analyzer's
    /// `min_slot_capacity` so admission and the runtime agree on what
    /// fits.
    fn packed_stride(&self) -> usize {
        let be = self.backend;
        let operand_width = |op: &MaybeEncrypted<B>| match op {
            MaybeEncrypted::Plain(pt) => be.decode(pt).width(),
            MaybeEncrypted::Encrypted(ct) => be.width(ct),
        };
        let mut stride = self.model.meta.quantized.max(self.model.meta.n_leaves);
        for plane in &self.model.thresholds {
            stride = stride.max(operand_width(plane));
        }
        if let Some(r) = &self.model.reshuffle {
            stride = stride.max(r.rows()).max(r.cols());
        }
        for matrix in &self.model.levels {
            stride = stride.max(matrix.rows()).max(matrix.cols());
        }
        for mask in &self.model.masks {
            stride = stride.max(operand_width(mask));
        }
        if let Some(shuffle) = &self.shuffle {
            stride = stride.max(shuffle.matrix.rows()).max(shuffle.matrix.cols());
        }
        stride
    }

    /// Pre-builds the tiled model artifacts for the packed-batch path
    /// (otherwise the first packed batch pays the one-time tiling
    /// cost). Returns the plan batches will use, or `None` when
    /// packing cannot engage (see [`Sally::pack_plan`]).
    pub fn warm_packed(&self) -> Option<PackPlan> {
        let plan = self.pack_plan()?;
        let _ = self.packed_model(plan);
        Some(plan)
    }

    fn packed_model(&self, plan: PackPlan) -> &PackedModel<B> {
        self.packed.get_or_init(|| {
            let be = self.backend;
            let (s, c) = (plan.stride, plan.lanes);
            PackedModel {
                thresholds: self
                    .model
                    .thresholds
                    .iter()
                    .map(|t| tile_operand(be, t, s, c))
                    .collect(),
                reshuffle: self.model.reshuffle.as_ref().map(|r| r.pack(be, s, c)),
                levels: self.model.levels.iter().map(|l| l.pack(be, s, c)).collect(),
                masks: self
                    .model
                    .masks
                    .iter()
                    .map(|m| tile_operand(be, m, s, c))
                    .collect(),
                shuffle: self.shuffle.as_ref().map(|sh| sh.matrix.pack(be, s, c)),
            }
        })
    }

    /// MatMul options for one call site, with a pre-split `zero_tag`
    /// derived from the (stage, level, unit) coordinates — the same
    /// discipline as `ks_keygen`'s per-digit seeds. Every concurrent
    /// `mat_vec` in a batch draws its all-skipped-fallback randomness
    /// from its own tag, so results cannot depend on scheduling order.
    fn matmul_at(&self, stage: u64, level: u64, unit: u64) -> MatMulOptions {
        let mut z = self
            .options
            .matmul
            .zero_tag
            .wrapping_add(stage.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(level.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(unit.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        MatMulOptions {
            zero_tag: z ^ (z >> 31),
            ..self.options.matmul
        }
    }

    /// Runs Algorithm 1 on an encrypted query.
    pub fn classify(&self, query: &EncryptedQuery<B>) -> EncryptedResult<B> {
        self.classify_traced(query).0
    }

    /// Runs Algorithm 1, additionally reporting per-stage wall-clock
    /// times and operation counts (the Figure 10 breakdown).
    pub fn classify_traced(&self, query: &EncryptedQuery<B>) -> (EncryptedResult<B>, EvalTrace) {
        let (mut results, trace) = self.classify_batch_traced(std::slice::from_ref(query));
        (results.pop().expect("one query in, one result out"), trace)
    }

    /// Runs Algorithm 1 over a batch of queries in one pass.
    ///
    /// Results are identical to calling [`classify`](Sally::classify)
    /// per query — the per-query operation sequence is unchanged — but
    /// the pipeline runs *stage-major*: each stage's model artifacts
    /// (threshold planes, reshuffle diagonals, level matrices + masks)
    /// are walked once per batch instead of once per query, which is
    /// what the `copse-server` batching scheduler amortises under
    /// concurrent load.
    pub fn classify_batch(&self, queries: &[EncryptedQuery<B>]) -> Vec<EncryptedResult<B>> {
        self.classify_batch_traced(queries).0
    }

    /// Runs a batch, additionally reporting one [`EvalTrace`]
    /// aggregated over the whole batch (per-stage wall-clock and
    /// operation counts summed across queries).
    pub fn classify_batch_traced(
        &self,
        queries: &[EncryptedQuery<B>],
    ) -> (Vec<EncryptedResult<B>>, EvalTrace) {
        let be = self.backend;
        let par = self.options.parallelism;
        let mut trace = EvalTrace::default();
        if queries.is_empty() {
            return (Vec::new(), trace);
        }
        // Packed path: only for real batches. A batch of one runs the
        // sequential circuit below — it *is* the oracle the packing
        // parity battery compares against.
        if queries.len() >= 2 {
            if let Some(plan) = self.pack_plan() {
                return self.classify_batch_packed(queries, plan);
            }
        }
        // Per-pass meter, installed as the task context for the whole
        // batch: ops recorded by this pass — including those executed
        // on shared-pool workers — mirror here, so the per-stage diffs
        // below stay exact even when other Sallys evaluate on the same
        // backend concurrently. The backend meter still accumulates
        // process totals.
        let pass = Arc::new(OpMeter::new());
        let _pass_scope = pass.install_scope();
        let _span = copse_trace::span("classify_batch");

        // Step 1: comparison. Every decision node of every query
        // thresholds within one stage pass; queries fork across the
        // shared pool (each query's circuit is untouched, so batch
        // results stay bitwise identical to per-query evaluation).
        let (decisions, report) = self.staged(&pass, "stage:comparison", || {
            map_indices(par, queries.len(), |qi| {
                secure_less_than(
                    be,
                    &queries[qi].planes,
                    &self.model.thresholds,
                    self.options.comparator,
                    par,
                )
            })
        });
        trace.comparison = report;

        // Step 2: reshuffle into branch preorder (compiled away when
        // level matrices were fused with R; then step 3 reads the
        // decisions directly and nothing is materialised here).
        let (branches, report) =
            self.staged(&pass, "stage:reshuffle", || match &self.model.reshuffle {
                Some(r) => map_indices(par, decisions.len(), |qi| {
                    mat_vec(be, r, &decisions[qi], self.matmul_at(1, 0, qi as u64), par)
                }),
                None => Vec::new(),
            });
        trace.reshuffle = report;

        // Step 3: per-level select-and-mask, level-major: the outer
        // loop walks each level matrix once and applies it to every
        // query of the batch before moving on.
        let inputs = if self.model.reshuffle.is_some() {
            &branches
        } else {
            &decisions
        };
        let (level_results, report) = self.staged(&pass, "stage:levels", || {
            let mut per_query = vec![Vec::with_capacity(self.model.levels.len()); queries.len()];
            for (li, (matrix, mask)) in self.model.levels.iter().zip(&self.model.masks).enumerate()
            {
                // Level-major outside, query-parallel inside: the
                // level matrix is walked once per batch while the
                // queries it applies to fork across the pool.
                let selected = map_indices(par, inputs.len(), |qi| {
                    let s = mat_vec(
                        be,
                        matrix,
                        &inputs[qi],
                        self.matmul_at(2, li as u64, qi as u64),
                        par,
                    );
                    mask.add_into(be, &s)
                });
                for (collected, s) in per_query.iter_mut().zip(selected) {
                    collected.push(s);
                }
            }
            per_query
        });
        trace.levels = report;

        // Step 4: accumulate each query's level results into its label
        // vector, then optionally scramble it with Sally's secret
        // permutation (paper §7.2.2; one extra plaintext MatMul).
        let (results, report) = self.staged(&pass, "stage:accumulate", || {
            map_indices(par, level_results.len(), |qi| {
                let labels = self.accumulate(&level_results[qi]);
                match &self.shuffle {
                    Some(shuffle) => mat_vec(
                        be,
                        &shuffle.matrix,
                        &labels,
                        self.matmul_at(3, 0, qi as u64),
                        par,
                    ),
                    None => labels,
                }
            })
        });
        trace.accumulate = report;

        (
            results
                .into_iter()
                .map(|ct| EncryptedResult { ct })
                .collect(),
            trace,
        )
    }

    /// The packed-batch pipeline: queries chunk into groups of
    /// `plan.lanes`, each chunk's operands pack into disjoint slot
    /// blocks of shared ciphertexts, and the four stages run **once
    /// per chunk**. Results split back out at the end with one masked
    /// unpack per query (the extra depth level `pack_plan` budgeted).
    /// A remainder chunk of one runs the ordinary sequential circuit —
    /// packing a single query would only add the unpack overhead.
    fn classify_batch_packed(
        &self,
        queries: &[EncryptedQuery<B>],
        plan: PackPlan,
    ) -> (Vec<EncryptedResult<B>>, EvalTrace) {
        let be = self.backend;
        let par = self.options.parallelism;
        let mut trace = EvalTrace::default();
        // Tiling the model is one-time, deploy-like work; build it
        // before installing the pass scope so per-batch stage ops stay
        // exact from the first packed batch onwards.
        let packed = self.packed_model(plan);
        let pass = Arc::new(OpMeter::new());
        let _pass_scope = pass.install_scope();
        let _span = copse_trace::span("classify_batch_packed");

        let (stride, lanes) = (plan.stride, plan.lanes);
        let full_width = lanes * stride;
        let chunks: Vec<&[EncryptedQuery<B>]> = queries.chunks(lanes).collect();

        // Step 1: pack each chunk's bit planes lane-wise, then run the
        // comparator once per chunk against the *tiled* threshold
        // planes. SecComp is purely slot-wise, so the packed circuit
        // is literally the sequential one over wider ciphertexts. A
        // partial chunk still packs at the full tiled width; unused
        // lanes hold zeros and are never unpacked.
        let (decisions, report) = self.staged(&pass, "stage:comparison", || {
            map_indices(par, chunks.len(), |ci| {
                let chunk = chunks[ci];
                if chunk.len() >= 2 {
                    let planes: Vec<B::Ciphertext> = (0..chunk[0].planes.len())
                        .map(|p| {
                            let lane_planes: Vec<B::Ciphertext> =
                                chunk.iter().map(|q| q.planes[p].clone()).collect();
                            be.pack_blocks(&lane_planes, stride, full_width)
                        })
                        .collect();
                    secure_less_than(
                        be,
                        &planes,
                        &packed.thresholds,
                        self.options.comparator,
                        par,
                    )
                } else {
                    secure_less_than(
                        be,
                        &chunk[0].planes,
                        &self.model.thresholds,
                        self.options.comparator,
                        par,
                    )
                }
            })
        });
        trace.comparison = report;

        // Step 2: reshuffle, one block-rotating MatMul per chunk.
        let (branches, report) =
            self.staged(&pass, "stage:reshuffle", || match &self.model.reshuffle {
                Some(r) => map_indices(par, decisions.len(), |ci| {
                    let options = self.matmul_at(1, 0, ci as u64);
                    if chunks[ci].len() >= 2 {
                        let tiled = packed.reshuffle.as_ref().expect("tiled with sequential");
                        mat_vec_packed(be, tiled, &decisions[ci], options, par)
                    } else {
                        mat_vec(be, r, &decisions[ci], options, par)
                    }
                }),
                None => Vec::new(),
            });
        trace.reshuffle = report;

        // Step 3: per-level select-and-mask, level-major over chunks.
        let inputs = if self.model.reshuffle.is_some() {
            &branches
        } else {
            &decisions
        };
        let (level_results, report) = self.staged(&pass, "stage:levels", || {
            let mut per_chunk = vec![Vec::with_capacity(self.model.levels.len()); chunks.len()];
            for (li, (matrix, mask)) in self.model.levels.iter().zip(&self.model.masks).enumerate()
            {
                let tiled_matrix = &packed.levels[li];
                let tiled_mask = &packed.masks[li];
                let selected = map_indices(par, inputs.len(), |ci| {
                    let options = self.matmul_at(2, li as u64, ci as u64);
                    if chunks[ci].len() >= 2 {
                        let s = mat_vec_packed(be, tiled_matrix, &inputs[ci], options, par);
                        tiled_mask.add_into(be, &s)
                    } else {
                        let s = mat_vec(be, matrix, &inputs[ci], options, par);
                        mask.add_into(be, &s)
                    }
                });
                for (collected, s) in per_chunk.iter_mut().zip(selected) {
                    collected.push(s);
                }
            }
            per_chunk
        });
        trace.levels = report;

        // Step 4: accumulate (slot-wise, packed-transparent), shuffle
        // if enabled, then split each chunk back into per-query
        // results with the backend's cached block masks.
        let (results, report) = self.staged(&pass, "stage:accumulate", || {
            map_indices(par, chunks.len(), |ci| -> Vec<B::Ciphertext> {
                let labels = self.accumulate(&level_results[ci]);
                if chunks[ci].len() >= 2 {
                    let shuffled = match &packed.shuffle {
                        Some(tiled) => {
                            mat_vec_packed(be, tiled, &labels, self.matmul_at(3, 0, ci as u64), par)
                        }
                        None => labels,
                    };
                    (0..chunks[ci].len())
                        .map(|lane| {
                            be.unpack_block(&shuffled, lane, stride, self.model.meta.n_leaves)
                        })
                        .collect()
                } else {
                    vec![match &self.shuffle {
                        Some(shuffle) => mat_vec(
                            be,
                            &shuffle.matrix,
                            &labels,
                            self.matmul_at(3, 0, ci as u64),
                            par,
                        ),
                        None => labels,
                    }]
                }
            })
        });
        trace.accumulate = report;
        trace.packed_sizes = chunks
            .iter()
            .flat_map(|c| std::iter::repeat_n(c.len() as u32, c.len()))
            .collect();

        (
            results
                .into_iter()
                .flatten()
                .map(|ct| EncryptedResult { ct })
                .collect(),
            trace,
        )
    }

    fn accumulate(&self, results: &[B::Ciphertext]) -> B::Ciphertext {
        let be = self.backend;
        assert!(!results.is_empty(), "compile guarantees >= 1 level");
        match self.model.accumulation {
            Accumulation::Linear => {
                let mut acc = results[0].clone();
                for r in &results[1..] {
                    acc = be.mul(&acc, r);
                }
                acc
            }
            Accumulation::BalancedTree => {
                let par = self.options.parallelism;
                let pairs = results.len() / 2;
                let mut layer =
                    map_indices(par, pairs, |i| be.mul(&results[2 * i], &results[2 * i + 1]));
                if results.len() % 2 == 1 {
                    layer.push(results.last().expect("odd element").clone());
                }
                while layer.len() > 1 {
                    let pairs = layer.len() / 2;
                    let mut next =
                        map_indices(par, pairs, |i| be.mul(&layer[2 * i], &layer[2 * i + 1]));
                    if layer.len() % 2 == 1 {
                        next.push(layer.last().expect("odd element").clone());
                    }
                    layer = next;
                }
                layer.into_iter().next().expect("nonempty")
            }
        }
    }

    /// Times one pipeline stage and attributes its ops by diffing the
    /// caller's **per-pass** meter (not the shared backend meter), so
    /// stage counts are exact even under concurrent evaluations. Each
    /// stage also opens a named timing span for the Chrome trace view.
    fn staged<T>(
        &self,
        pass: &OpMeter,
        name: &'static str,
        f: impl FnOnce() -> T,
    ) -> (T, StageReport) {
        let _span = copse_trace::span(name);
        let before = pass.snapshot();
        let start = copse_trace::Stopwatch::start();
        let value = f();
        (
            value,
            StageReport {
                duration: start.elapsed(),
                ops: pass.snapshot().since(&before),
            },
        )
    }
}

/// Deterministic Fisher-Yates permutation of `0..n` driven by a
/// splitmix64 stream (keeps `copse-core` free of a rand dependency).
fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_fhe::ClearBackend;
    use copse_forest::microbench::{self, table6_specs};
    use copse_forest::model::{Forest, Node, Tree};

    fn figure1() -> Forest {
        let d2 = Node::branch(1, 10, Node::leaf(0), Node::leaf(1));
        let d3 = Node::branch(0, 20, Node::leaf(2), Node::leaf(3));
        let d1 = Node::branch(0, 30, d2, d3);
        let d4 = Node::branch(1, 40, Node::leaf(4), Node::leaf(5));
        let d0 = Node::branch(1, 50, d1, d4);
        Forest::new(
            2,
            8,
            (0..6).map(|i| format!("L{i}")).collect(),
            vec![Tree::new(d0)],
        )
        .unwrap()
    }

    fn end_to_end(
        forest: &Forest,
        form: ModelForm,
        options: CompileOptions,
        eval: EvalOptions,
        queries: &[Vec<u64>],
    ) {
        let be = ClearBackend::with_defaults();
        let maurice = Maurice::compile(forest, options).unwrap();
        let sally = Sally::with_options(&be, maurice.deploy(&be, form), eval);
        let diane = Diane::new(&be, maurice.public_query_info());
        for q in queries {
            let query = diane.encrypt_features(q).unwrap();
            let outcome = diane.decrypt_result(&sally.classify(&query));
            assert_eq!(
                outcome.leaf_hits().to_bools(),
                forest.classify_leaf_hits(q),
                "query {q:?}"
            );
            assert_eq!(
                outcome.plurality_label().unwrap(),
                forest.labels()[forest.classify_plurality(q)],
                "query {q:?}"
            );
        }
    }

    #[test]
    fn figure1_encrypted_model_end_to_end() {
        let queries: Vec<Vec<u64>> = (0..60u64)
            .step_by(5)
            .flat_map(|x| [(x, 7u64), (x, 45), (x, 60)].map(|(a, b)| vec![a, b]))
            .collect();
        end_to_end(
            &figure1(),
            ModelForm::Encrypted,
            CompileOptions::default(),
            EvalOptions::default(),
            &queries,
        );
    }

    #[test]
    fn figure1_plain_model_end_to_end() {
        let queries = vec![vec![25u64, 60], vec![0, 0], vec![0, 45], vec![255, 255]];
        end_to_end(
            &figure1(),
            ModelForm::Plain,
            CompileOptions::default(),
            EvalOptions::default(),
            &queries,
        );
    }

    #[test]
    fn microbench_suite_encrypted_end_to_end() {
        for spec in table6_specs() {
            let forest = microbench::generate(&spec, 3);
            let queries = microbench::random_queries(&forest, 6, 99);
            end_to_end(
                &forest,
                ModelForm::Encrypted,
                CompileOptions::default(),
                EvalOptions::default(),
                &queries,
            );
        }
    }

    #[test]
    fn fused_and_linear_options_agree() {
        let forest = microbench::generate(&table6_specs()[2], 8);
        let queries = microbench::random_queries(&forest, 8, 1);
        for fuse in [false, true] {
            for acc in [Accumulation::BalancedTree, Accumulation::Linear] {
                end_to_end(
                    &forest,
                    ModelForm::Encrypted,
                    CompileOptions {
                        fuse_reshuffle: fuse,
                        accumulation: acc,
                        ..CompileOptions::default()
                    },
                    EvalOptions::default(),
                    &queries,
                );
            }
        }
    }

    #[test]
    fn multithreaded_agrees_with_sequential() {
        let forest = microbench::generate(&table6_specs()[5], 4);
        let queries = microbench::random_queries(&forest, 6, 2);
        end_to_end(
            &forest,
            ModelForm::Encrypted,
            CompileOptions::default(),
            EvalOptions {
                parallelism: Parallelism { threads: 8 },
                ..EvalOptions::default()
            },
            &queries,
        );
    }

    #[test]
    fn sparse_diagonal_ablation_agrees() {
        let forest = microbench::generate(&table6_specs()[0], 6);
        let queries = microbench::random_queries(&forest, 6, 3);
        end_to_end(
            &forest,
            ModelForm::Plain,
            CompileOptions::default(),
            EvalOptions {
                matmul: MatMulOptions {
                    skip_zero_diagonals: true,
                    ..MatMulOptions::default()
                },
                ..EvalOptions::default()
            },
            &queries,
        );
    }

    #[test]
    fn trace_reports_all_stages() {
        let be = ClearBackend::with_defaults();
        let forest = figure1();
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let diane = Diane::new(&be, maurice.public_query_info());
        let q = diane.encrypt_features(&[25, 60]).unwrap();
        let (_, trace) = sally.classify_traced(&q);
        // Comparison does p multiplies and more; reshuffle is 1-depth
        // matmul; levels do d matmuls + masks; accumulation d-1 mults.
        assert!(trace.comparison.ops.multiply > 0);
        assert!(trace.reshuffle.ops.multiply > 0);
        assert!(trace.levels.ops.multiply > 0);
        assert_eq!(trace.accumulate.ops.multiply, 2); // d=3 -> 2 mults
        assert_eq!(trace.levels.ops.constant_add, 0); // masks encrypted
        assert!(trace.total_ops().multiply >= 5);
    }

    #[test]
    fn plain_model_uses_constant_ops() {
        let be = ClearBackend::with_defaults();
        let forest = figure1();
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Plain));
        let diane = Diane::new(&be, maurice.public_query_info());
        let q = diane.encrypt_features(&[25, 60]).unwrap();
        let (_, trace) = sally.classify_traced(&q);
        // Level matmuls multiply by plaintext diagonals; masks XOR as
        // constants.
        assert_eq!(trace.levels.ops.multiply, 0);
        assert!(trace.levels.ops.constant_multiply > 0);
        assert_eq!(trace.levels.ops.constant_add, 3);
    }

    #[test]
    fn model_encryption_cost_matches_table1d() {
        // Encrypt count for deployment = p + q + d(b+1).
        let be = ClearBackend::with_defaults();
        let maurice = Maurice::compile(&figure1(), CompileOptions::default()).unwrap();
        let meta = maurice.compiled().meta.clone();
        let before = be.meter().snapshot();
        let _ = maurice.deploy(&be, ModelForm::Encrypted);
        let delta = be.meter().snapshot().since(&before);
        let expected = meta.precision as u64
            + meta.quantized as u64
            + meta.max_level as u64 * (meta.branches as u64 + 1);
        assert_eq!(delta.encrypt, expected);
    }

    #[test]
    fn plain_deployment_encrypts_nothing() {
        let be = ClearBackend::with_defaults();
        let maurice = Maurice::compile(&figure1(), CompileOptions::default()).unwrap();
        let before = be.meter().snapshot();
        let _ = maurice.deploy(&be, ModelForm::Plain);
        assert_eq!(be.meter().snapshot().since(&before).encrypt, 0);
    }

    #[test]
    fn query_encryption_costs_p_encrypts() {
        let be = ClearBackend::with_defaults();
        let maurice = Maurice::compile(&figure1(), CompileOptions::default()).unwrap();
        let diane = Diane::new(&be, maurice.public_query_info());
        let before = be.meter().snapshot();
        let _ = diane.encrypt_features(&[1, 2]).unwrap();
        assert_eq!(be.meter().snapshot().since(&before).encrypt, 8);
    }

    #[test]
    fn query_validation_errors() {
        let be = ClearBackend::with_defaults();
        let maurice = Maurice::compile(&figure1(), CompileOptions::default()).unwrap();
        let diane = Diane::new(&be, maurice.public_query_info());
        assert_eq!(
            diane.encrypt_features(&[1]).unwrap_err(),
            QueryError::FeatureCountMismatch {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            diane.encrypt_features(&[1, 300]).unwrap_err(),
            QueryError::FeatureOverflow {
                value: 300,
                precision: 8
            }
        );
    }

    #[test]
    fn result_shuffling_hides_leaf_order_but_preserves_votes() {
        let be = ClearBackend::with_defaults();
        let forest = microbench::generate(&table6_specs()[1], 12);
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();

        let plain_sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let plain_diane = Diane::new(&be, maurice.public_query_info());

        let shuffled_sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Encrypted),
            EvalOptions {
                shuffle_seed: Some(0xD1CE),
                ..EvalOptions::default()
            },
        );
        // Clients of a shuffling server must use *its* codebook.
        let shuffled_diane = Diane::new(&be, shuffled_sally.client_query_info());
        assert_ne!(
            shuffled_sally.client_query_info().codebook,
            maurice.public_query_info().codebook,
            "shuffle should reorder the codebook"
        );

        let mut saw_reordered_hits = false;
        for q in microbench::random_queries(&forest, 6, 8) {
            let query = plain_diane.encrypt_features(&q).unwrap();
            let plain = plain_diane.decrypt_result(&plain_sally.classify(&query));
            let shuffled = shuffled_diane.decrypt_result(&shuffled_sally.classify(&query));
            // Votes (and hence the classification) are invariant...
            assert_eq!(plain.vote_counts(), shuffled.vote_counts(), "query {q:?}");
            assert_eq!(plain.plurality_label(), shuffled.plurality_label());
            // ...while the raw bit positions are scrambled.
            saw_reordered_hits |= plain.leaf_hits() != shuffled.leaf_hits();
        }
        assert!(saw_reordered_hits, "permutation never moved a hit");
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let be = ClearBackend::with_defaults();
        let forest = figure1();
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let mk = |seed| {
            Sally::with_options(
                &be,
                maurice.deploy(&be, ModelForm::Encrypted),
                EvalOptions {
                    shuffle_seed: Some(seed),
                    ..EvalOptions::default()
                },
            )
            .client_query_info()
            .codebook
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn batch_is_bitwise_identical_and_meter_exact_at_every_pool_degree() {
        // Two backends (hence two independent OpMeters): the
        // sequential one is the oracle. For every pool degree the
        // batch results must match bitwise AND the parallel backend's
        // operation totals must equal the sequential ones exactly —
        // concurrent workers recording on one meter lose nothing.
        let forest = microbench::generate(&table6_specs()[1], 23);
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();

        let seq_be = ClearBackend::with_defaults();
        let seq_sally = Sally::host(&seq_be, maurice.deploy(&seq_be, ModelForm::Encrypted));
        let diane = Diane::new(&seq_be, maurice.public_query_info());
        let queries: Vec<EncryptedQuery<_>> = microbench::random_queries(&forest, 6, 51)
            .iter()
            .map(|q| diane.encrypt_features(q).unwrap())
            .collect();
        let seq_before = seq_be.meter().snapshot();
        let want: Vec<BitVec> = seq_sally
            .classify_batch(&queries)
            .iter()
            .map(|r| seq_be.decrypt(r.ciphertext()))
            .collect();
        let seq_ops = seq_be.meter().snapshot().since(&seq_before);

        for threads in [2usize, 4, 7] {
            let par_be = ClearBackend::with_defaults();
            let par_sally = Sally::with_options(
                &par_be,
                maurice.deploy(&par_be, ModelForm::Encrypted),
                EvalOptions {
                    parallelism: Parallelism { threads },
                    ..EvalOptions::default()
                },
            );
            let par_queries: Vec<EncryptedQuery<_>> = queries
                .iter()
                .map(|q| EncryptedQuery::from_planes(q.planes().to_vec()))
                .collect();
            let before = par_be.meter().snapshot();
            let got: Vec<BitVec> = par_sally
                .classify_batch(&par_queries)
                .iter()
                .map(|r| par_be.decrypt(r.ciphertext()))
                .collect();
            let par_ops = par_be.meter().snapshot().since(&before);
            assert_eq!(got, want, "results diverged at {threads} threads");
            // Decrypts aside (identical per query), every homomorphic
            // op total must merge exactly across workers.
            assert_eq!(par_ops, seq_ops, "op totals diverged at {threads} threads");
        }
    }

    #[test]
    fn batch_classification_is_bitwise_identical_to_sequential() {
        let be = ClearBackend::with_defaults();
        let forest = microbench::generate(&table6_specs()[1], 31);
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let diane = Diane::new(&be, maurice.public_query_info());

        let queries: Vec<EncryptedQuery<_>> = microbench::random_queries(&forest, 9, 17)
            .iter()
            .map(|q| diane.encrypt_features(q).unwrap())
            .collect();
        let sequential: Vec<BitVec> = queries
            .iter()
            .map(|q| be.decrypt(sally.classify(q).ciphertext()))
            .collect();
        let batched: Vec<BitVec> = sally
            .classify_batch(&queries)
            .iter()
            .map(|r| be.decrypt(r.ciphertext()))
            .collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn batch_with_shuffle_matches_sequential() {
        let be = ClearBackend::with_defaults();
        let forest = figure1();
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Encrypted),
            EvalOptions {
                shuffle_seed: Some(0xFEED),
                ..EvalOptions::default()
            },
        );
        let diane = Diane::new(&be, sally.client_query_info());
        let queries: Vec<EncryptedQuery<_>> = [[25u64, 60], [0, 0], [55, 7]]
            .iter()
            .map(|q| diane.encrypt_features(q).unwrap())
            .collect();
        for (q, r) in queries.iter().zip(sally.classify_batch(&queries)) {
            assert_eq!(
                be.decrypt(r.ciphertext()),
                be.decrypt(sally.classify(q).ciphertext())
            );
        }
    }

    #[test]
    fn batch_trace_sums_per_query_ops() {
        let be = ClearBackend::with_defaults();
        let forest = figure1();
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let diane = Diane::new(&be, maurice.public_query_info());
        let q = diane.encrypt_features(&[25, 60]).unwrap();
        let (_, single) = sally.classify_traced(&q);
        let batch: Vec<EncryptedQuery<_>> = vec![q.clone(), q.clone(), q];
        let (results, trace) = sally.classify_batch_traced(&batch);
        assert_eq!(results.len(), 3);
        assert_eq!(trace.total_ops().multiply, 3 * single.total_ops().multiply);
        assert_eq!(trace.total_ops().rotate, 3 * single.total_ops().rotate);
        assert_eq!(
            trace.accumulate.ops.multiply,
            3 * single.accumulate.ops.multiply
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let be = ClearBackend::with_defaults();
        let maurice = Maurice::compile(&figure1(), CompileOptions::default()).unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let before = be.meter().snapshot();
        let (results, trace) = sally.classify_batch_traced(&[]);
        assert!(results.is_empty());
        assert_eq!(trace.total_ops(), be.meter().snapshot().since(&before));
    }

    /// Clear backend with a slot capacity of `lanes` query strides for
    /// the given model (derived by probing with unbounded capacity).
    fn packed_clear_backend(maurice: &Maurice, form: ModelForm, lanes: usize) -> ClearBackend {
        let probe_be = ClearBackend::new(copse_fhe::ClearConfig {
            slot_capacity: Some(1 << 20),
            ..copse_fhe::ClearConfig::default()
        });
        let probe = Sally::host(&probe_be, maurice.deploy(&probe_be, form));
        let stride = probe.pack_plan().expect("probe capacity fits").stride;
        ClearBackend::new(copse_fhe::ClearConfig {
            slot_capacity: Some(lanes * stride),
            ..copse_fhe::ClearConfig::default()
        })
    }

    #[test]
    fn packed_batch_decodes_identically_and_reports_lane_occupancy() {
        let forest = microbench::generate(&table6_specs()[1], 23);
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        for form in [ModelForm::Plain, ModelForm::Encrypted] {
            let be = packed_clear_backend(&maurice, form, 4);
            let sally = Sally::host(&be, maurice.deploy(&be, form));
            let plan = sally.warm_packed().expect("4 lanes fit by construction");
            assert_eq!(plan.lanes, 4);
            let diane = Diane::new(&be, maurice.public_query_info());
            let queries: Vec<EncryptedQuery<_>> = microbench::random_queries(&forest, 9, 77)
                .iter()
                .map(|q| diane.encrypt_features(q).unwrap())
                .collect();
            for (size, occupancy) in [
                (2usize, vec![2u32, 2]),
                (4, vec![4, 4, 4, 4]),
                (5, vec![4, 4, 4, 4, 1]),
                (9, vec![4, 4, 4, 4, 4, 4, 4, 4, 1]),
            ] {
                let batch = &queries[..size];
                let (results, trace) = sally.classify_batch_traced(batch);
                assert_eq!(trace.packed_sizes, occupancy, "{form:?} size {size}");
                for (q, r) in batch.iter().zip(&results) {
                    assert_eq!(
                        be.decrypt(r.ciphertext()),
                        be.decrypt(sally.classify(q).ciphertext()),
                        "{form:?} size {size}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_chunk_amortises_stage_ops_across_lanes() {
        // A full 4-lane chunk must spend strictly fewer homomorphic
        // ops than 4 sequential evaluations — the whole point of the
        // layout. (Not equal to 1× either: packing and unpacking add
        // their rotate/mask deltas.)
        let forest = microbench::generate(&table6_specs()[1], 23);
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let be = packed_clear_backend(&maurice, ModelForm::Encrypted, 4);
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        sally.warm_packed().expect("4 lanes fit");
        let diane = Diane::new(&be, maurice.public_query_info());
        let queries: Vec<EncryptedQuery<_>> = microbench::random_queries(&forest, 4, 78)
            .iter()
            .map(|q| diane.encrypt_features(q).unwrap())
            .collect();
        let (_, single) = sally.classify_traced(&queries[0]);
        let (_, packed) = sally.classify_batch_traced(&queries);
        let seq4 = 4 * single.total_ops().total_homomorphic();
        assert!(
            packed.total_ops().total_homomorphic() < seq4,
            "packed {} !< 4x sequential {}",
            packed.total_ops().total_homomorphic(),
            seq4
        );
    }

    #[test]
    fn packing_disengages_without_capacity_consent_or_headroom() {
        let forest = figure1();
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();

        // Unbounded capacity (the default clear config) never packs.
        let be = ClearBackend::with_defaults();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        assert_eq!(sally.pack_plan(), None);

        // PackingMode::Off wins even when capacity fits.
        let be = packed_clear_backend(&maurice, ModelForm::Encrypted, 4);
        let sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Encrypted),
            EvalOptions {
                packing: PackingMode::Off,
                ..EvalOptions::default()
            },
        );
        assert_eq!(sally.pack_plan(), None);
        let diane = Diane::new(&be, maurice.public_query_info());
        let queries: Vec<EncryptedQuery<_>> = [[25u64, 60], [0, 0], [55, 7]]
            .iter()
            .map(|q| diane.encrypt_features(q).unwrap())
            .collect();
        let (_, trace) = sally.classify_batch_traced(&queries);
        assert!(trace.packed_sizes.is_empty(), "Off mode must not pack");

        // No depth headroom for the unpack mask: capacity fits but the
        // budget only covers the sequential circuit. The batch still
        // evaluates correctly on the stage-major path.
        let meta = maurice.compiled().meta.clone();
        let inputs =
            CostInputs::from_meta(&meta, ModelForm::Encrypted, false, maurice.accumulation());
        let exact = ours::classify_depth(&inputs);
        let probe = packed_clear_backend(&maurice, ModelForm::Encrypted, 4);
        let stride = {
            let s = Sally::host(&probe, maurice.deploy(&probe, ModelForm::Encrypted));
            s.pack_plan().expect("probe fits").stride
        };
        let tight = ClearBackend::new(copse_fhe::ClearConfig {
            max_depth: exact,
            slot_capacity: Some(4 * stride),
            work_per_op: 0,
        });
        let sally = Sally::host(&tight, maurice.deploy(&tight, ModelForm::Encrypted));
        assert_eq!(sally.pack_plan(), None, "no headroom for the unpack level");
        let diane = Diane::new(&tight, maurice.public_query_info());
        let queries: Vec<EncryptedQuery<_>> = [[25u64, 60], [0, 0]]
            .iter()
            .map(|q| diane.encrypt_features(q).unwrap())
            .collect();
        let (results, trace) = sally.classify_batch_traced(&queries);
        assert!(trace.packed_sizes.is_empty());
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn packed_batch_with_shuffle_matches_sequential() {
        let forest = microbench::generate(&table6_specs()[1], 12);
        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let be = packed_clear_backend(&maurice, ModelForm::Encrypted, 3);
        let sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Encrypted),
            EvalOptions {
                shuffle_seed: Some(0xFEED),
                ..EvalOptions::default()
            },
        );
        assert!(
            sally.pack_plan().is_some(),
            "shuffle must not break packing"
        );
        let diane = Diane::new(&be, sally.client_query_info());
        let queries: Vec<EncryptedQuery<_>> = microbench::random_queries(&forest, 5, 13)
            .iter()
            .map(|q| diane.encrypt_features(q).unwrap())
            .collect();
        let (results, trace) = sally.classify_batch_traced(&queries);
        assert_eq!(trace.packed_sizes, vec![3, 3, 3, 2, 2]);
        for (q, r) in queries.iter().zip(&results) {
            assert_eq!(
                be.decrypt(r.ciphertext()),
                be.decrypt(sally.classify(q).ciphertext())
            );
        }
    }

    #[test]
    fn query_planes_roundtrip_through_accessors() {
        let be = ClearBackend::with_defaults();
        let maurice = Maurice::compile(&figure1(), CompileOptions::default()).unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let diane = Diane::new(&be, maurice.public_query_info());
        let q = diane.encrypt_features(&[25, 60]).unwrap();
        let rebuilt = EncryptedQuery::<ClearBackend>::from_planes(q.planes().to_vec());
        assert_eq!(
            be.decrypt(sally.classify(&rebuilt).ciphertext()),
            be.decrypt(sally.classify(&q).ciphertext())
        );
    }

    #[test]
    fn outcome_votes_and_labels() {
        let outcome = ClassificationOutcome {
            leaf_hits: BitVec::from_bools(&[true, false, true, false]),
            label_names: vec!["a".into(), "b".into()],
            codebook: vec![0, 1, 1, 0],
        };
        assert_eq!(outcome.selected_leaves(), vec![0, 2]);
        assert_eq!(outcome.vote_counts(), vec![1, 1]);
        assert_eq!(outcome.plurality_label(), Some("a")); // tie -> low
    }

    #[test]
    fn empty_outcome_has_no_label() {
        let outcome = ClassificationOutcome {
            leaf_hits: BitVec::zeros(3),
            label_names: vec!["a".into()],
            codebook: vec![0, 0, 0],
        };
        assert_eq!(outcome.plurality_label(), None);
    }
}
