//! The COPSE staging compiler (paper §5).
//!
//! [`compile`] lowers a trained [`Forest`] into the vectorizable
//! artifacts of §4.2 — padded threshold vector, reshuffling matrix,
//! level matrices and masks — plus the metadata the runtime and the
//! parties need. Compilation is a pure function of the model: nothing
//! here touches encryption, so the same compiled model can be deployed
//! in plaintext (Maurice = Sally) or encrypted (Maurice offloads) form.

use crate::analysis::ForestAnalysis;
use crate::artifacts::{BoolMatrix, CompiledModel, ModelMeta};
use copse_fhe::{BitSliced, BitVec};
use copse_forest::model::Forest;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the level results are combined into the final label vector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Accumulation {
    /// Balanced product tree: `d-1` multiplies at depth `ceil(log2 d)`
    /// (the paper's choice, §4.3).
    #[default]
    BalancedTree,
    /// Left fold: `d-1` multiplies at depth `d` (ablation baseline).
    Linear,
}

/// Compiler options; the defaults reproduce the paper's configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Fold the reshuffling matrix into every level matrix at compile
    /// time (`L' = L·R`), trading the reshuffle MatMul for wider level
    /// matrices (ablation; the paper evaluates the unfused pipeline).
    pub fuse_reshuffle: bool,
    /// Accumulation strategy.
    pub accumulation: Accumulation,
    /// Extra padding added to the revealed maximum multiplicity, so
    /// only an upper bound on `K` leaks (paper §7.2.1).
    pub multiplicity_padding: usize,
    /// Sentinel threshold value `S` for padded slots. The value is
    /// irrelevant to correctness (sentinel comparisons are dropped by
    /// `R`); the paper and the default use 0.
    pub sentinel: u64,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            fuse_reshuffle: false,
            accumulation: Accumulation::BalancedTree,
            multiplicity_padding: 0,
            sentinel: 0,
        }
    }
}

/// Errors from [`compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The forest contains no branch nodes at all; there is nothing to
    /// compare and the protocol degenerates.
    NoBranches,
    /// The sentinel does not fit in the model's precision.
    SentinelOverflow {
        /// The offending sentinel.
        sentinel: u64,
        /// Model precision in bits.
        precision: u32,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoBranches => {
                write!(f, "forest has no branches; nothing to compile")
            }
            CompileError::SentinelOverflow {
                sentinel,
                precision,
            } => write!(f, "sentinel {sentinel} does not fit in {precision} bits"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Replicates each feature `k` times, matching the slot layout of the
/// padded threshold vector (paper step 0: `[x, y]` with `K = 3`
/// becomes `[x, x, x, y, y, y]`).
pub fn replicate_features(features: &[u64], k: usize) -> Vec<u64> {
    features
        .iter()
        .flat_map(|&f| std::iter::repeat_n(f, k))
        .collect()
}

/// Compiles a forest into its vectorizable artifacts.
///
/// # Errors
///
/// Returns [`CompileError::NoBranches`] for branchless forests and
/// [`CompileError::SentinelOverflow`] when the configured sentinel
/// exceeds the model precision.
pub fn compile(forest: &Forest, options: CompileOptions) -> Result<CompiledModel, CompileError> {
    let analysis = ForestAnalysis::new(forest);
    let b = analysis.branch_count();
    if b == 0 {
        return Err(CompileError::NoBranches);
    }
    let precision = forest.precision();
    if precision < 64 && options.sentinel >= (1u64 << precision) {
        return Err(CompileError::SentinelOverflow {
            sentinel: options.sentinel,
            precision,
        });
    }

    let feature_count = forest.feature_count();
    let k = forest.max_multiplicity() + options.multiplicity_padding;
    let q = k * feature_count;
    let d = analysis.max_level();
    let n_leaves = analysis.leaf_count();

    // Padded threshold vector: feature-grouped, preorder within each
    // group, sentinel-padded to multiplicity K (paper §4.2.1).
    let mut values = vec![options.sentinel; q];
    let mut slot_branch: Vec<Option<usize>> = vec![None; q];
    let mut occupancy = vec![0usize; feature_count];
    for (branch_ix, branch) in analysis.branches().iter().enumerate() {
        let slot = branch.feature * k + occupancy[branch.feature];
        occupancy[branch.feature] += 1;
        values[slot] = branch.threshold;
        slot_branch[slot] = Some(branch_ix);
    }
    let thresholds = BitSliced::from_values(&values, precision);

    // Reshuffling matrix R (b×q): row i has its single 1 at the padded
    // slot carrying branch i (paper §4.2.2).
    let mut reshuffle = BoolMatrix::zeros(b, q);
    for (slot, branch) in slot_branch.iter().enumerate() {
        if let Some(branch_ix) = *branch {
            reshuffle.set(branch_ix, slot, true);
        }
    }

    // Level matrices and masks (paper §4.2.3-4.2.4), level ℓ at index
    // ℓ-1. Leaves with no ancestors (single-leaf trees) get an all-zero
    // row and a mask bit of 1, keeping them unconditionally selected.
    let mut levels = Vec::with_capacity(d as usize);
    let mut masks = Vec::with_capacity(d as usize);
    for level in 1..=d {
        let mut matrix = BoolMatrix::zeros(n_leaves, b);
        let mut mask = BitVec::zeros(n_leaves);
        for leaf in 0..n_leaves {
            match analysis.branch_above(level, leaf) {
                Some(step) => {
                    matrix.set(leaf, step.branch, true);
                    mask.set(leaf, !step.on_true_side);
                }
                None => mask.set(leaf, true),
            }
        }
        let matrix = if options.fuse_reshuffle {
            matrix.mat_mul(&reshuffle)
        } else {
            matrix
        };
        levels.push(matrix);
        masks.push(mask);
    }

    let codebook = analysis.leaves().iter().map(|l| l.label).collect();
    Ok(CompiledModel {
        meta: ModelMeta {
            feature_count,
            precision,
            branches: b,
            quantized: q,
            max_level: d,
            max_multiplicity: k,
            n_trees: forest.trees().len(),
            n_leaves,
            label_names: forest.labels().to_vec(),
        },
        thresholds,
        reshuffle,
        levels,
        masks,
        codebook,
        fused: options.fuse_reshuffle,
    })
}

/// Evaluates a compiled model **in the clear** with plain bit algebra:
/// the pure-logic oracle for the secure pipeline (and a readable
/// restatement of Algorithm 1).
pub fn evaluate_plain(model: &CompiledModel, features: &[u64]) -> BitVec {
    let k = model.meta.max_multiplicity;
    let replicated = replicate_features(features, k);
    assert_eq!(replicated.len(), model.meta.quantized);

    // Step 1: comparison. decision[j] = feature[j] < threshold[j].
    let thresholds = model.thresholds.to_values();
    let decisions = BitVec::from_fn(model.meta.quantized, |j| replicated[j] < thresholds[j]);

    // Step 2: reorder into branch preorder (skipped when fused).
    let branches = model.reshuffle.mat_vec(&decisions);

    // Steps 3-4: per-level select + mask, then accumulate.
    let mut acc = BitVec::ones(model.meta.n_leaves);
    for (matrix, mask) in model.levels.iter().zip(&model.masks) {
        let input = if model.fused { &decisions } else { &branches };
        let level_vec = matrix.mat_vec(input).xor(mask);
        acc = acc.and(&level_vec);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_forest::microbench::{self, table6_specs};
    use copse_forest::model::{Forest, Node, Tree};

    fn figure1() -> Forest {
        let d2 = Node::branch(1, 10, Node::leaf(0), Node::leaf(1));
        let d3 = Node::branch(0, 20, Node::leaf(2), Node::leaf(3));
        let d1 = Node::branch(0, 30, d2, d3);
        let d4 = Node::branch(1, 40, Node::leaf(4), Node::leaf(5));
        let d0 = Node::branch(1, 50, d1, d4);
        Forest::new(
            2,
            8,
            (0..6).map(|i| format!("L{i}")).collect(),
            vec![Tree::new(d0)],
        )
        .unwrap()
    }

    #[test]
    fn figure1_metadata() {
        let m = compile(&figure1(), CompileOptions::default()).unwrap();
        assert_eq!(m.meta.branches, 5);
        assert_eq!(m.meta.max_multiplicity, 3);
        assert_eq!(m.meta.quantized, 6);
        assert_eq!(m.meta.max_level, 3);
        assert_eq!(m.meta.n_leaves, 6);
        assert_eq!(m.levels.len(), 3);
        assert_eq!(m.codebook, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn threshold_vector_groups_by_feature() {
        let m = compile(&figure1(), CompileOptions::default()).unwrap();
        let values = m.thresholds.to_values();
        // Feature x (=0) has thresholds 30 (d1), 20 (d3) in preorder +
        // one sentinel; feature y (=1) has 50 (d0), 10 (d2), 40 (d4).
        assert_eq!(values, vec![30, 20, 0, 50, 10, 40]);
    }

    #[test]
    fn reshuffle_structure_invariants() {
        let m = compile(&figure1(), CompileOptions::default()).unwrap();
        let r = &m.reshuffle;
        assert_eq!((r.rows(), r.cols()), (5, 6));
        // Exactly one 1 per row.
        for row in 0..r.rows() {
            assert_eq!(r.row(row).count_ones(), 1, "row {row}");
        }
        // At most one 1 per column; empty columns = sentinel slots.
        let mut empty = 0;
        for c in 0..r.cols() {
            let ones = (0..r.rows()).filter(|&row| r.get(row, c)).count();
            assert!(ones <= 1, "column {c}");
            empty += usize::from(ones == 0);
        }
        assert_eq!(empty, m.meta.quantized - m.meta.branches);
    }

    #[test]
    fn reshuffle_sorts_decisions_into_preorder() {
        let m = compile(&figure1(), CompileOptions::default()).unwrap();
        // Branch i's decision lives at the slot with R[i][slot] = 1;
        // multiplying R by a one-hot slot vector yields one-hot branch
        // i.
        for branch in 0..m.meta.branches {
            let slot = (0..m.meta.quantized)
                .find(|&c| m.reshuffle.get(branch, c))
                .unwrap();
            let v = BitVec::from_fn(m.meta.quantized, |j| j == slot);
            let out = m.reshuffle.mat_vec(&v);
            assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![branch]);
        }
    }

    #[test]
    fn level_matrices_have_one_hot_rows() {
        let m = compile(&figure1(), CompileOptions::default()).unwrap();
        for (ix, lvl) in m.levels.iter().enumerate() {
            assert_eq!((lvl.rows(), lvl.cols()), (6, 5));
            for leaf in 0..lvl.rows() {
                assert_eq!(
                    lvl.row(leaf).count_ones(),
                    1,
                    "level {} leaf {leaf}",
                    ix + 1
                );
            }
        }
    }

    #[test]
    fn figure1_masks_match_paper_walkthrough() {
        // Level 1 (paper Fig. 4a): L0, L2, L4 on the false side (mask
        // 1); L1, L3, L5 on the true side (mask 0).
        let m = compile(&figure1(), CompileOptions::default()).unwrap();
        assert_eq!(
            m.masks[0].to_bools(),
            [true, false, true, false, true, false]
        );
    }

    #[test]
    fn plain_evaluation_matches_reference_inference() {
        let forest = figure1();
        let m = compile(&forest, CompileOptions::default()).unwrap();
        for x in (0u64..64).step_by(7) {
            for y in (0u64..64).step_by(5) {
                let hits = evaluate_plain(&m, &[x, y]);
                let expected = forest.classify_leaf_hits(&[x, y]);
                assert_eq!(hits.to_bools(), expected, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn plain_evaluation_matches_on_microbench_suite() {
        for spec in table6_specs() {
            let forest = microbench::generate(&spec, 17);
            let m = compile(&forest, CompileOptions::default()).unwrap();
            for q in microbench::random_queries(&forest, 25, 4242) {
                assert_eq!(
                    evaluate_plain(&m, &q).to_bools(),
                    forest.classify_leaf_hits(&q),
                    "{} query {q:?}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn fused_pipeline_is_equivalent() {
        let forest = microbench::generate(&table6_specs()[1], 5);
        let unfused = compile(&forest, CompileOptions::default()).unwrap();
        let fused = compile(
            &forest,
            CompileOptions {
                fuse_reshuffle: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert!(fused.fused);
        assert_eq!(fused.levels[0].cols(), fused.meta.quantized);
        for q in microbench::random_queries(&forest, 40, 7) {
            assert_eq!(evaluate_plain(&unfused, &q), evaluate_plain(&fused, &q));
        }
    }

    #[test]
    fn multiplicity_padding_loosens_k() {
        let forest = figure1();
        let padded = compile(
            &forest,
            CompileOptions {
                multiplicity_padding: 2,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(padded.meta.max_multiplicity, 5);
        assert_eq!(padded.meta.quantized, 10);
        // Still classifies correctly.
        for q in [[25u64, 60], [0, 0], [0, 45]] {
            assert_eq!(
                evaluate_plain(&padded, &q).to_bools(),
                forest.classify_leaf_hits(&q)
            );
        }
    }

    #[test]
    fn nonzero_sentinel_is_equivalent() {
        let forest = figure1();
        let m = compile(
            &forest,
            CompileOptions {
                sentinel: 255,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        for q in [[25u64, 60], [13, 200], [255, 255]] {
            assert_eq!(
                evaluate_plain(&m, &q).to_bools(),
                forest.classify_leaf_hits(&q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn sentinel_overflow_rejected() {
        let err = compile(
            &figure1(),
            CompileOptions {
                sentinel: 256,
                ..CompileOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::SentinelOverflow { .. }));
    }

    #[test]
    fn branchless_forest_rejected() {
        let f = Forest::new(1, 8, vec!["a".into()], vec![Tree::new(Node::leaf(0))]).unwrap();
        assert_eq!(
            compile(&f, CompileOptions::default()).unwrap_err(),
            CompileError::NoBranches
        );
    }

    #[test]
    fn degenerate_tree_inside_forest_is_always_selected() {
        // Tree 1 is a bare leaf; its slot must be 1 in every result.
        let t0 = Tree::new(Node::branch(0, 100, Node::leaf(0), Node::leaf(1)));
        let t1 = Tree::new(Node::leaf(1));
        let forest = Forest::new(1, 8, vec!["a".into(), "b".into()], vec![t0, t1]).unwrap();
        let m = compile(&forest, CompileOptions::default()).unwrap();
        for x in [0u64, 50, 150, 255] {
            let hits = evaluate_plain(&m, &[x]);
            assert!(hits.get(2), "bare-leaf slot must always be hit");
            assert_eq!(hits.to_bools(), forest.classify_leaf_hits(&[x]));
        }
    }

    #[test]
    fn replicate_features_layout() {
        assert_eq!(replicate_features(&[7, 9], 3), vec![7, 7, 7, 9, 9, 9]);
        assert_eq!(replicate_features(&[], 3), Vec::<u64>::new());
        assert_eq!(replicate_features(&[1], 0), Vec::<u64>::new());
    }
}
