//! # copse-core — the COPSE compiler and runtime
//!
//! The primary contribution of *"Vectorized Secure Evaluation of
//! Decision Forests"* (PLDI 2021): a staging compiler that restructures
//! decision-forest inference into four vectorizable stages over packed
//! FHE ciphertexts, and the runtime that evaluates them.
//!
//! * [`analysis`] — forest flattening (preorder enumeration, levels,
//!   ancestor paths);
//! * [`artifacts`] — the vectorizable structures of §4.2 (padded
//!   threshold vector, reshuffling matrix, level matrices/masks) in
//!   generalised-diagonal form;
//! * [`compiler`] — lowering a forest to those artifacts, with the
//!   paper's options (multiplicity padding, fusion, accumulation);
//! * [`seccomp`] — the packed lexicographic comparator (step 1);
//! * [`matmul`] — the Halevi–Shoup depth-1 matrix-vector kernel
//!   (steps 2–3);
//! * [`runtime`] — Maurice/Diane/Sally and Algorithm 1 (step 4
//!   included), with per-stage tracing;
//! * [`parallel`] — the threading substrate;
//! * [`complexity`] — executable versions of the paper's Table 1/2
//!   cost model, asserted against metered runs;
//! * [`leakage`] — the §7 information-leakage audit (Tables 3/4);
//! * [`codegen`] — the staging back-end: emits a standalone Rust
//!   program specialised to one compiled model;
//! * [`wire`] — byte encoding of the protocol's public handshake
//!   messages.

#![warn(missing_docs)]

pub mod analysis;
pub mod artifacts;
pub mod codegen;
pub mod compiler;
pub mod complexity;
pub mod leakage;
pub mod matmul;
pub mod parallel;
pub mod runtime;
pub mod seccomp;
pub mod wire;

pub use compiler::{compile, Accumulation, CompileError, CompileOptions};
pub use runtime::{
    ClassificationOutcome, Diane, EvalOptions, EvalTrace, Maurice, ModelForm, PackPlan,
    PackingMode, Sally,
};
