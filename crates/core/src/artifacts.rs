//! Compiled model artifacts: the vectorizable structures of paper §4.2.
//!
//! The compiler lowers a forest to four kinds of data, all designed for
//! packed evaluation:
//!
//! * the **padded threshold vector** (bit-sliced, feature-grouped,
//!   sentinel-padded to quantized width `q`);
//! * the **reshuffling matrix** `R` (b×q), sorting comparison results
//!   into branch preorder and dropping sentinel slots;
//! * one **level matrix** (leaves×b) per level, selecting for every
//!   label the branch above it at that level;
//! * one **level mask** per level, flagging which labels hang off the
//!   false side of their selected branch.
//!
//! Matrices are stored as **generalised diagonals** (paper §4.1.2) so
//! the Halevi–Shoup kernel can multiply them against packed vectors at
//! multiplicative depth 1.

use copse_fhe::{BitSliced, BitVec};
use serde::{Deserialize, Serialize};

/// A dense boolean matrix with row-major storage and generalised
/// diagonal extraction.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoolMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>, // one BitVec of width `cols` per row
}

impl BoolMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Sets entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Row `r` as packed bits.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Total number of 1 entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(BitVec::count_ones).sum()
    }

    /// The `i`-th generalised diagonal (paper §4.1.2): the length-`rows`
    /// vector `d_i[r] = M[r][(r + i) mod cols]`. An `m x n` matrix has
    /// exactly `n` generalised diagonals.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.cols()`.
    pub fn diagonal(&self, i: usize) -> BitVec {
        assert!(
            i < self.cols,
            "diagonal {i} out of range for {} cols",
            self.cols
        );
        BitVec::from_fn(self.rows, |r| self.get(r, (r + i) % self.cols))
    }

    /// All generalised diagonals, in offset order.
    pub fn diagonals(&self) -> Vec<BitVec> {
        (0..self.cols).map(|i| self.diagonal(i)).collect()
    }

    /// Plain boolean matrix-vector product (the evaluation oracle the
    /// secure kernel is tested against). Operates over GF(2): entries
    /// that collide XOR together — though the COPSE matrices never
    /// place two ones in a row, making OR and XOR agree.
    ///
    /// # Panics
    ///
    /// Panics if `v.width() != self.cols()`.
    pub fn mat_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.width(), self.cols, "vector width != matrix cols");
        BitVec::from_fn(self.rows, |r| {
            let mut acc = false;
            for c in v.iter_ones() {
                acc ^= self.get(r, c);
            }
            acc
        })
    }

    /// Boolean matrix product `self * other` over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn mat_mul(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.cols, other.rows, "inner dimensions differ");
        let mut out = BoolMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in self.data[r].iter_ones() {
                out.data[r] = out.data[r].xor(other.row(k));
            }
        }
        out
    }
}

/// Metadata describing a compiled model's shape: every paper parameter
/// in one place.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelMeta {
    /// Feature-space size.
    pub feature_count: usize,
    /// Fixed-point precision `p`.
    pub precision: u32,
    /// Branch count `b`.
    pub branches: usize,
    /// Quantized branching `q` (after any extra multiplicity padding).
    pub quantized: usize,
    /// Maximum level `d`.
    pub max_level: u32,
    /// Effective maximum multiplicity `K` revealed to the data owner.
    pub max_multiplicity: usize,
    /// Number of trees `N`.
    pub n_trees: usize,
    /// Total leaves (the width of the classification bitvector).
    pub n_leaves: usize,
    /// Label alphabet.
    pub label_names: Vec<String>,
}

/// A fully compiled model: the output of the COPSE compiler, ready to
/// be encoded/encrypted and shipped to the evaluator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledModel {
    /// Shape metadata.
    pub meta: ModelMeta,
    /// Padded threshold vector in transposed bit-sliced form
    /// (`p` planes of width `q`).
    pub thresholds: BitSliced,
    /// Reshuffling matrix `R` (b×q). Present even when level matrices
    /// are fused, for inspection.
    pub reshuffle: BoolMatrix,
    /// Level matrices, index 0 = level 1 (leaves×b, or leaves×q when
    /// fused with `R`).
    pub levels: Vec<BoolMatrix>,
    /// Level masks, index 0 = level 1 (width = leaves).
    pub masks: Vec<BitVec>,
    /// Codebook: label index output by each leaf slot (paper §7.2.2).
    pub codebook: Vec<usize>,
    /// Whether `levels` already incorporate `R` (compile-time fusion
    /// ablation).
    pub fused: bool,
}

impl CompiledModel {
    /// Width of the classification result vector.
    pub fn result_width(&self) -> usize {
        self.meta.n_leaves
    }

    /// The input width the comparison stage expects (`q`).
    pub fn comparison_width(&self) -> usize {
        self.meta.quantized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> BoolMatrix {
        // 2x3 matrix [[1,0,1],[0,1,0]]
        let mut m = BoolMatrix::zeros(2, 3);
        m.set(0, 0, true);
        m.set(0, 2, true);
        m.set(1, 1, true);
        m
    }

    #[test]
    fn diagonal_formula() {
        let m = example();
        // d_0[r] = M[r][r]: [1, 1]; d_1[r] = M[r][r+1 mod 3]: [0, 0];
        // d_2[r] = M[r][r+2 mod 3]: [1, 0].
        assert_eq!(m.diagonal(0).to_bools(), [true, true]);
        assert_eq!(m.diagonal(1).to_bools(), [false, false]);
        assert_eq!(m.diagonal(2).to_bools(), [true, false]);
        assert_eq!(m.diagonals().len(), 3);
    }

    #[test]
    fn mat_vec_small() {
        let m = example();
        let v = BitVec::from_bools(&[true, true, false]);
        assert_eq!(m.mat_vec(&v).to_bools(), [true, true]);
        let v = BitVec::from_bools(&[false, false, true]);
        assert_eq!(m.mat_vec(&v).to_bools(), [true, false]);
    }

    #[test]
    fn diagonals_reconstruct_matrix() {
        // M[r][c] can be read back from diagonal (c - r) mod n.
        let mut m = BoolMatrix::zeros(4, 6);
        for (r, c) in [(0, 5), (1, 1), (2, 3), (3, 0), (0, 0)] {
            m.set(r, c, true);
        }
        for r in 0..4 {
            for c in 0..6 {
                let i = (c + 6 - (r % 6)) % 6;
                assert_eq!(m.diagonal(i).get(r), m.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn tall_matrix_diagonals_wrap_columns() {
        // 5x2: diagonals have length 5 and wrap columns twice.
        let mut m = BoolMatrix::zeros(5, 2);
        m.set(3, 1, true);
        // (3 + i) mod 2 == 1 -> i == 0 for odd rows... row 3: c=1 ->
        // i = (1 - 3) mod 2 = 0.
        assert!(m.diagonal(0).get(3));
        assert!(!m.diagonal(1).get(3));
    }

    #[test]
    fn mat_mul_matches_manual() {
        // R: 2x3 picks columns; L: 3x2.
        let mut l = BoolMatrix::zeros(3, 2);
        l.set(0, 0, true);
        l.set(1, 1, true);
        l.set(2, 0, true);
        let r = example(); // 2x3
        let lr = l.mat_mul(&r); // 3x3
                                // Row 0 of L selects row 0 of R = [1,0,1].
        assert_eq!(lr.row(0).to_bools(), [true, false, true]);
        assert_eq!(lr.row(1).to_bools(), [false, true, false]);
        assert_eq!(lr.row(2).to_bools(), [true, false, true]);
    }

    #[test]
    fn mat_mul_then_vec_equals_vec_then_vec() {
        let mut l = BoolMatrix::zeros(3, 2);
        l.set(0, 1, true);
        l.set(2, 0, true);
        let r = example();
        let v = BitVec::from_bools(&[true, false, true]);
        assert_eq!(l.mat_mul(&r).mat_vec(&v), l.mat_vec(&r.mat_vec(&v)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn diagonal_bounds_checked() {
        let _ = example().diagonal(3);
    }

    #[test]
    fn count_ones_counts() {
        assert_eq!(example().count_ones(), 3);
        assert_eq!(BoolMatrix::zeros(4, 4).count_ones(), 0);
    }
}
