//! Packed matrix-vector multiplication (Halevi–Shoup, paper §4.1.2).
//!
//! Matrices live in generalised-diagonal form: the product of an
//! `m × n` matrix with a packed width-`n` vector is
//!
//! ```text
//! M·v = Σ_{i=0}^{n-1}  d_i ⊙ adjust(rot(v, i))
//! ```
//!
//! where `d_i` is the `i`-th generalised diagonal, `rot` rotates slots
//! left, and `adjust` reconciles widths when `m ≠ n` (cyclic extension
//! for `m > n`, truncation for `m < n`). Every term is one rotation and
//! one (possibly plaintext) multiplication, so the whole product has
//! **constant multiplicative depth 1** regardless of matrix size — the
//! property that keeps COPSE's circuit shallow.

use crate::artifacts::BoolMatrix;
use crate::parallel::{map_chunks, Parallelism};
use copse_fhe::{FheBackend, MaybeEncrypted};

/// A matrix deployed for packed evaluation: generalised diagonals,
/// each either plaintext or encrypted.
#[derive(Debug)]
pub struct EncodedMatrix<B: FheBackend> {
    diagonals: Vec<MaybeEncrypted<B>>,
    /// Plaintext sparsity hints: `true` for diagonals known to be
    /// all-zero. Only populated for plaintext deployments; encrypted
    /// diagonals are never skipped (their contents are hidden).
    zero_diagonals: Vec<bool>,
    rows: usize,
    cols: usize,
}

impl<B: FheBackend> Clone for EncodedMatrix<B> {
    fn clone(&self) -> Self {
        Self {
            diagonals: self.diagonals.clone(),
            zero_diagonals: self.zero_diagonals.clone(),
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl<B: FheBackend> EncodedMatrix<B> {
    /// Encodes a boolean matrix as plaintext diagonals (Maurice =
    /// Sally configurations). Precomputes backend acceleration state
    /// for every diagonal, so deployment — not the first query — pays
    /// any one-time transform cost.
    pub fn encode_plain(backend: &B, matrix: &BoolMatrix) -> Self {
        let diags = matrix.diagonals();
        let zero_diagonals = diags.iter().map(|d| d.is_zero()).collect();
        let encoded = Self {
            diagonals: diags
                .iter()
                .map(|d| MaybeEncrypted::Plain(backend.encode(d)))
                .collect(),
            zero_diagonals,
            rows: matrix.rows(),
            cols: matrix.cols(),
        };
        encoded.precompute(backend);
        encoded
    }

    /// Warms backend-side caches for the plaintext diagonals (the BGV
    /// backend forward-NTTs each fixed diagonal exactly once here;
    /// every query and batch thereafter multiplies pointwise against
    /// the cached transform). Encrypted diagonals have no plaintext
    /// cache and are left untouched. Diagonals warm independently, so
    /// when the backend is configured for kernel parallelism the batch
    /// forks onto the shared worker pool — deployment pays the
    /// one-time transform cost across cores (the caches are
    /// write-once, so the warmed state is identical either way).
    pub fn precompute(&self, backend: &B) {
        let plain: Vec<&B::Plaintext> = self
            .diagonals
            .iter()
            .filter_map(|d| match d {
                MaybeEncrypted::Plain(pt) => Some(pt),
                MaybeEncrypted::Encrypted(_) => None,
            })
            .collect();
        let parallelism = Parallelism {
            threads: backend.kernel_threads(),
        };
        let _: Vec<()> = crate::parallel::map_indices(parallelism, plain.len(), |i| {
            backend.prepare_plaintext(plain[i])
        });
    }

    /// Encrypts a boolean matrix diagonal-by-diagonal (offloaded
    /// model; costs `cols` Encrypt operations, which is how the paper
    /// counts model encryption in Table 1d).
    pub fn encrypt(backend: &B, matrix: &BoolMatrix) -> Self {
        Self {
            diagonals: matrix
                .diagonals()
                .iter()
                .map(|d| MaybeEncrypted::Encrypted(backend.encrypt_bits(d)))
                .collect(),
            zero_diagonals: vec![false; matrix.cols()],
            rows: matrix.rows(),
            cols: matrix.cols(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (= number of diagonals).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if any diagonal is encrypted.
    pub fn is_encrypted(&self) -> bool {
        self.diagonals.iter().any(MaybeEncrypted::is_encrypted)
    }
}

/// Options for the MatMul kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatMulOptions {
    /// Skip plaintext diagonals that are all-zero. Sound only for
    /// plaintext models (the hint is never populated for encrypted
    /// ones); off by default to match the paper's operation counts.
    pub skip_zero_diagonals: bool,
}

/// Multiplies an encoded matrix by a packed ciphertext vector.
///
/// Determinism: diagonal chunks run on the shared worker pool and
/// their partial sums combine in chunk order, so the result is bitwise
/// identical to the sequential route. The one caveat is the
/// all-skipped fallback (`skip_zero_diagonals` on a fully zero
/// plaintext matrix), which encrypts a fresh zero vector: its
/// *plaintext* is always identical, but on randomized backends the
/// ciphertext bits depend on the encryption-randomness draw order,
/// which concurrent `mat_vec` calls (e.g. a parallel batch) do not
/// serialise.
///
/// # Panics
///
/// Panics if `v`'s width differs from the matrix column count.
pub fn mat_vec<B: FheBackend>(
    backend: &B,
    matrix: &EncodedMatrix<B>,
    v: &B::Ciphertext,
    options: MatMulOptions,
    parallelism: Parallelism,
) -> B::Ciphertext {
    assert_eq!(
        backend.width(v),
        matrix.cols,
        "vector width {} != matrix cols {}",
        backend.width(v),
        matrix.cols
    );
    let _span = copse_trace::span("mat_vec");
    let (m, n) = (matrix.rows, matrix.cols);

    let term = |i: usize| -> Option<B::Ciphertext> {
        if options.skip_zero_diagonals && matrix.zero_diagonals[i] {
            return None;
        }
        let rotated = if i == 0 {
            v.clone()
        } else {
            backend.rotate(v, i as isize)
        };
        let adjusted = match m.cmp(&n) {
            std::cmp::Ordering::Greater => backend.cyclic_extend(&rotated, m),
            std::cmp::Ordering::Less => backend.truncate(&rotated, m),
            std::cmp::Ordering::Equal => rotated,
        };
        Some(matrix.diagonals[i].mul_into(backend, &adjusted))
    };

    // Each chunk of diagonals produces a partial sum; chunks run on
    // worker threads, partial sums combine on the caller.
    let partials = map_chunks(parallelism, n, |range| {
        let mut acc: Option<B::Ciphertext> = None;
        for i in range {
            if let Some(t) = term(i) {
                acc = Some(match acc {
                    None => t,
                    Some(a) => backend.add(&a, &t),
                });
            }
        }
        acc
    });
    let mut acc: Option<B::Ciphertext> = None;
    for p in partials.into_iter().flatten() {
        acc = Some(match acc {
            None => p,
            Some(a) => backend.add(&a, &p),
        });
    }
    // An all-zero (or fully skipped) matrix still yields a result.
    acc.unwrap_or_else(|| backend.encrypt_zeros(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_fhe::{BitVec, ClearBackend, FheBackend};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, density: f64, rng: &mut SmallRng) -> BoolMatrix {
        let mut m = BoolMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    fn check_all_forms(m: &BoolMatrix, v: &BitVec, threads: usize) {
        let be = ClearBackend::with_defaults();
        let want = m.mat_vec(v);
        let ct = be.encrypt_bits(v);
        let par = Parallelism { threads };

        let plain = EncodedMatrix::encode_plain(&be, m);
        let got = mat_vec(&be, &plain, &ct, MatMulOptions::default(), par);
        assert_eq!(be.decrypt(&got), want, "plain {}x{}", m.rows(), m.cols());

        let skip = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions {
                skip_zero_diagonals: true,
            },
            par,
        );
        assert_eq!(
            be.decrypt(&skip),
            want,
            "skip-zero {}x{}",
            m.rows(),
            m.cols()
        );

        let enc = EncodedMatrix::encrypt(&be, m);
        let got = mat_vec(&be, &enc, &ct, MatMulOptions::default(), par);
        assert_eq!(
            be.decrypt(&got),
            want,
            "encrypted {}x{}",
            m.rows(),
            m.cols()
        );
    }

    #[test]
    fn square_matrices_match_oracle() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let m = random_matrix(8, 8, 0.4, &mut rng);
            let v = BitVec::from_fn(8, |_| rng.gen_bool(0.5));
            check_all_forms(&m, &v, 1);
        }
    }

    #[test]
    fn tall_matrices_cyclically_extend() {
        // m > n: the rotated vector is cyclically extended (the [x,y,z]
        // -> [x,y,z,x,...] rule of §4.1.2).
        let mut rng = SmallRng::seed_from_u64(2);
        for (rows, cols) in [(7, 3), (12, 5), (9, 2), (10, 10)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            check_all_forms(&m, &v, 1);
        }
    }

    #[test]
    fn wide_matrices_truncate() {
        let mut rng = SmallRng::seed_from_u64(3);
        for (rows, cols) in [(3, 7), (5, 12), (1, 9)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            check_all_forms(&m, &v, 1);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = random_matrix(33, 47, 0.3, &mut rng);
        let v = BitVec::from_fn(47, |_| rng.gen_bool(0.5));
        check_all_forms(&m, &v, 8);
    }

    #[test]
    fn every_pool_degree_matches_the_sequential_result() {
        // Bitwise parity across even, pool-wide, and lopsided chunk
        // counts (7 divides neither 18 nor 29 diagonals).
        let mut rng = SmallRng::seed_from_u64(7);
        for (rows, cols) in [(18, 18), (12, 29)] {
            let m = random_matrix(rows, cols, 0.4, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            for threads in [2usize, 4, 7] {
                check_all_forms(&m, &v, threads);
            }
        }
    }

    #[test]
    fn multiplicative_depth_is_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        let be = ClearBackend::with_defaults();
        for (rows, cols) in [(4, 4), (9, 3), (3, 9), (40, 40)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            let ct = be.encrypt_bits(&v);
            let enc = EncodedMatrix::encrypt(&be, &m);
            let out = mat_vec(
                &be,
                &enc,
                &ct,
                MatMulOptions::default(),
                Parallelism::sequential(),
            );
            assert_eq!(be.depth(&out), 1, "{rows}x{cols}");
        }
    }

    #[test]
    fn op_counts_match_table1b_shape() {
        // For an n-column matrix: n-1 rotations (offset 0 is free), n
        // multiplies, n-1 additions (paper Table 1b counts b, b, b+1
        // with the mask add included).
        let be = ClearBackend::with_defaults();
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 13;
        let m = random_matrix(n, n, 0.6, &mut rng);
        let v = BitVec::from_fn(n, |_| rng.gen_bool(0.5));
        let ct = be.encrypt_bits(&v);
        let enc = EncodedMatrix::encrypt(&be, &m);
        let before = be.meter().snapshot();
        let _ = mat_vec(
            &be,
            &enc,
            &ct,
            MatMulOptions::default(),
            Parallelism::sequential(),
        );
        let delta = be.meter().snapshot().since(&before);
        assert_eq!(delta.rotate, (n - 1) as u64);
        assert_eq!(delta.multiply, n as u64);
        assert_eq!(delta.add, (n - 1) as u64);
    }

    #[test]
    fn skip_zero_reduces_work_for_sparse_plain_models() {
        let be = ClearBackend::with_defaults();
        // Permutation-like matrix: one 1 per row -> at most n nonzero
        // diagonals out of 32.
        let mut m = BoolMatrix::zeros(8, 32);
        for r in 0..8 {
            m.set(r, r * 4, true);
        }
        let v = BitVec::from_fn(32, |i| i % 3 == 0);
        let ct = be.encrypt_bits(&v);
        let plain = EncodedMatrix::encode_plain(&be, &m);

        let before = be.meter().snapshot();
        let _ = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions::default(),
            Parallelism::sequential(),
        );
        let dense = be.meter().snapshot().since(&before);

        let before = be.meter().snapshot();
        let _ = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions {
                skip_zero_diagonals: true,
            },
            Parallelism::sequential(),
        );
        let sparse = be.meter().snapshot().since(&before);
        assert!(sparse.constant_multiply < dense.constant_multiply);
        assert!(sparse.constant_multiply <= 8);
    }

    #[test]
    fn all_zero_matrix_yields_zero_vector() {
        let be = ClearBackend::with_defaults();
        let m = BoolMatrix::zeros(5, 3);
        let v = BitVec::ones(3);
        let ct = be.encrypt_bits(&v);
        let plain = EncodedMatrix::encode_plain(&be, &m);
        let out = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions {
                skip_zero_diagonals: true,
            },
            Parallelism::sequential(),
        );
        assert_eq!(be.decrypt(&out), BitVec::zeros(5));
    }

    #[test]
    #[should_panic(expected = "vector width")]
    fn width_mismatch_panics() {
        let be = ClearBackend::with_defaults();
        let m = BoolMatrix::zeros(4, 4);
        let plain = EncodedMatrix::encode_plain(&be, &m);
        let ct = be.encrypt_bits(&BitVec::zeros(5));
        let _ = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions::default(),
            Parallelism::sequential(),
        );
    }
}
