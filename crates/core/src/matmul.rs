//! Packed matrix-vector multiplication (Halevi–Shoup, paper §4.1.2).
//!
//! Matrices live in generalised-diagonal form: the product of an
//! `m × n` matrix with a packed width-`n` vector is
//!
//! ```text
//! M·v = Σ_{i=0}^{n-1}  d_i ⊙ adjust(rot(v, i))
//! ```
//!
//! where `d_i` is the `i`-th generalised diagonal, `rot` rotates slots
//! left, and `adjust` reconciles widths when `m ≠ n` (cyclic extension
//! for `m > n`, truncation for `m < n`). Every term is one rotation and
//! one (possibly plaintext) multiplication, so the whole product has
//! **constant multiplicative depth 1** regardless of matrix size — the
//! property that keeps COPSE's circuit shallow.

use crate::artifacts::BoolMatrix;
use crate::parallel::{map_chunks, Parallelism};
use copse_fhe::{FheBackend, MaybeEncrypted};

/// A matrix deployed for packed evaluation: generalised diagonals,
/// each either plaintext or encrypted.
#[derive(Debug)]
pub struct EncodedMatrix<B: FheBackend> {
    diagonals: Vec<MaybeEncrypted<B>>,
    /// Plaintext sparsity hints: `true` for diagonals known to be
    /// all-zero. Only populated for plaintext deployments; encrypted
    /// diagonals are never skipped (their contents are hidden).
    zero_diagonals: Vec<bool>,
    rows: usize,
    cols: usize,
}

impl<B: FheBackend> Clone for EncodedMatrix<B> {
    fn clone(&self) -> Self {
        Self {
            diagonals: self.diagonals.clone(),
            zero_diagonals: self.zero_diagonals.clone(),
            rows: self.rows,
            cols: self.cols,
        }
    }
}

impl<B: FheBackend> EncodedMatrix<B> {
    /// Encodes a boolean matrix as plaintext diagonals (Maurice =
    /// Sally configurations). Precomputes backend acceleration state
    /// for every diagonal, so deployment — not the first query — pays
    /// any one-time transform cost.
    pub fn encode_plain(backend: &B, matrix: &BoolMatrix) -> Self {
        let diags = matrix.diagonals();
        let zero_diagonals = diags.iter().map(|d| d.is_zero()).collect();
        let encoded = Self {
            diagonals: diags
                .iter()
                .map(|d| MaybeEncrypted::Plain(backend.encode(d)))
                .collect(),
            zero_diagonals,
            rows: matrix.rows(),
            cols: matrix.cols(),
        };
        encoded.precompute(backend);
        encoded
    }

    /// Warms backend-side caches for the plaintext diagonals (the BGV
    /// backend forward-NTTs each fixed diagonal exactly once here;
    /// every query and batch thereafter multiplies pointwise against
    /// the cached transform). Encrypted diagonals have no plaintext
    /// cache and are left untouched. Diagonals warm independently, so
    /// when the backend is configured for kernel parallelism the batch
    /// forks onto the shared worker pool — deployment pays the
    /// one-time transform cost across cores (the caches are
    /// write-once, so the warmed state is identical either way).
    pub fn precompute(&self, backend: &B) {
        let plain: Vec<&B::Plaintext> = self
            .diagonals
            .iter()
            .filter_map(|d| match d {
                MaybeEncrypted::Plain(pt) => Some(pt),
                MaybeEncrypted::Encrypted(_) => None,
            })
            .collect();
        let parallelism = Parallelism {
            threads: backend.kernel_threads(),
        };
        let _: Vec<()> = crate::parallel::map_indices(parallelism, plain.len(), |i| {
            backend.prepare_plaintext(plain[i])
        });
    }

    /// Encrypts a boolean matrix diagonal-by-diagonal (offloaded
    /// model; costs `cols` Encrypt operations, which is how the paper
    /// counts model encryption in Table 1d).
    pub fn encrypt(backend: &B, matrix: &BoolMatrix) -> Self {
        Self {
            diagonals: matrix
                .diagonals()
                .iter()
                .map(|d| MaybeEncrypted::Encrypted(backend.encrypt_bits(d)))
                .collect(),
            zero_diagonals: vec![false; matrix.cols()],
            rows: matrix.rows(),
            cols: matrix.cols(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (= number of diagonals).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if any diagonal is encrypted.
    pub fn is_encrypted(&self) -> bool {
        self.diagonals.iter().any(MaybeEncrypted::is_encrypted)
    }
}

/// Options for the MatMul kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatMulOptions {
    /// Skip plaintext diagonals that are all-zero. Sound only for
    /// plaintext models (the hint is never populated for encrypted
    /// ones); off by default to match the paper's operation counts.
    pub skip_zero_diagonals: bool,
    /// Pre-split seed for the all-skipped fallback's fresh zero
    /// encryption ([`FheBackend::encrypt_zeros_seeded`]). Callers that
    /// run `mat_vec` concurrently (the batched runtime) give every
    /// call site a distinct tag, which makes the fallback ciphertext
    /// a pure function of the tag — bitwise identical no matter how
    /// the calls interleave.
    pub zero_tag: u64,
}

/// Multiplies an encoded matrix by a packed ciphertext vector.
///
/// Determinism: diagonal chunks run on the shared worker pool and
/// their partial sums combine in chunk order, so the result is bitwise
/// identical to the sequential route. That includes the all-skipped
/// fallback (`skip_zero_diagonals` on a fully zero plaintext matrix):
/// its fresh zero encryption draws randomness from the caller's
/// pre-split [`MatMulOptions::zero_tag`] rather than the backend's
/// internal stream, so concurrent `mat_vec` calls (e.g. a parallel
/// batch) cannot reorder the draws.
///
/// # Panics
///
/// Panics if `v`'s width differs from the matrix column count.
pub fn mat_vec<B: FheBackend>(
    backend: &B,
    matrix: &EncodedMatrix<B>,
    v: &B::Ciphertext,
    options: MatMulOptions,
    parallelism: Parallelism,
) -> B::Ciphertext {
    assert_eq!(
        backend.width(v),
        matrix.cols,
        "vector width {} != matrix cols {}",
        backend.width(v),
        matrix.cols
    );
    let _span = copse_trace::span("mat_vec");
    let (m, n) = (matrix.rows, matrix.cols);

    let term = |i: usize| -> Option<B::Ciphertext> {
        if options.skip_zero_diagonals && matrix.zero_diagonals[i] {
            return None;
        }
        let rotated = if i == 0 {
            v.clone()
        } else {
            backend.rotate(v, i as isize)
        };
        let adjusted = match m.cmp(&n) {
            std::cmp::Ordering::Greater => backend.cyclic_extend(&rotated, m),
            std::cmp::Ordering::Less => backend.truncate(&rotated, m),
            std::cmp::Ordering::Equal => rotated,
        };
        Some(matrix.diagonals[i].mul_into(backend, &adjusted))
    };

    // Each chunk of diagonals produces a partial sum; chunks run on
    // worker threads, partial sums combine on the caller.
    let partials = map_chunks(parallelism, n, |range| {
        let mut acc: Option<B::Ciphertext> = None;
        for i in range {
            if let Some(t) = term(i) {
                acc = Some(match acc {
                    None => t,
                    Some(a) => backend.add(&a, &t),
                });
            }
        }
        acc
    });
    let mut acc: Option<B::Ciphertext> = None;
    for p in partials.into_iter().flatten() {
        acc = Some(match acc {
            None => p,
            Some(a) => backend.add(&a, &p),
        });
    }
    // An all-zero (or fully skipped) matrix still yields a result,
    // deterministically (see MatMulOptions::zero_tag).
    acc.unwrap_or_else(|| backend.encrypt_zeros_seeded(m, options.zero_tag))
}

/// A matrix tiled for the packed batch layout: every diagonal repeats
/// at block offsets `0, stride, 2*stride, …`, so one multiply applies
/// the model to all `count` packed queries at once.
///
/// Built once per deployed model (lazily, on the first packed batch)
/// by [`EncodedMatrix::pack`]; plaintext diagonals re-encode and
/// pre-warm their tiled form, encrypted diagonals pay the pack-of-
/// clones rotations once here instead of once per chunk.
#[derive(Debug)]
pub struct PackedMatrix<B: FheBackend> {
    diagonals: Vec<MaybeEncrypted<B>>,
    zero_diagonals: Vec<bool>,
    rows: usize,
    cols: usize,
    stride: usize,
    count: usize,
}

impl<B: FheBackend> EncodedMatrix<B> {
    /// Tiles the matrix for `count` packed queries at block `stride`.
    pub fn pack(&self, backend: &B, stride: usize, count: usize) -> PackedMatrix<B> {
        PackedMatrix {
            diagonals: self
                .diagonals
                .iter()
                .map(|d| tile_operand(backend, d, stride, count))
                .collect(),
            zero_diagonals: self.zero_diagonals.clone(),
            rows: self.rows,
            cols: self.cols,
            stride,
            count,
        }
    }
}

impl<B: FheBackend> PackedMatrix<B> {
    /// Number of rows of the underlying (per-block) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (= number of diagonals) per block.
    pub fn cols(&self) -> usize {
        self.cols
    }
}

/// Tiles one model operand (threshold plane, level mask, or diagonal)
/// into every block of the packed layout: plaintext operands re-encode
/// tiled (unmetered, pre-warmed), encrypted operands pack `count`
/// clones of themselves.
pub fn tile_operand<B: FheBackend>(
    backend: &B,
    operand: &MaybeEncrypted<B>,
    stride: usize,
    count: usize,
) -> MaybeEncrypted<B> {
    match operand {
        MaybeEncrypted::Plain(pt) => {
            let tiled = backend.encode_tiled(&backend.decode(pt), stride, count);
            backend.prepare_plaintext(&tiled);
            MaybeEncrypted::Plain(tiled)
        }
        MaybeEncrypted::Encrypted(ct) => {
            MaybeEncrypted::Encrypted(backend.tile_ciphertext(ct, stride, count))
        }
    }
}

/// The packed-batch counterpart of [`mat_vec`]: multiplies a tiled
/// matrix by a packed vector whose blocks each hold one query's
/// width-`cols` operand, producing a packed vector of width-`rows`
/// blocks. Exactly the op count of **one** sequential [`mat_vec`]
/// (`n-1` rotations, `n` multiplies, `n-1` additions) regardless of
/// how many queries are packed — that is the amortisation the layout
/// exists for.
///
/// Determinism matches [`mat_vec`]: chunk-ordered partial sums and a
/// seeded all-skipped fallback.
///
/// # Panics
///
/// Panics if `v`'s width differs from the packed layout's
/// `count * stride` slots.
pub fn mat_vec_packed<B: FheBackend>(
    backend: &B,
    matrix: &PackedMatrix<B>,
    v: &B::Ciphertext,
    options: MatMulOptions,
    parallelism: Parallelism,
) -> B::Ciphertext {
    let full_width = matrix.count * matrix.stride;
    assert_eq!(
        backend.width(v),
        full_width,
        "packed vector width {} != {} blocks at stride {}",
        backend.width(v),
        matrix.count,
        matrix.stride
    );
    let _span = copse_trace::span("mat_vec_packed");
    let (m, n, s) = (matrix.rows, matrix.cols, matrix.stride);

    let term = |i: usize| -> Option<B::Ciphertext> {
        if options.skip_zero_diagonals && matrix.zero_diagonals[i] {
            return None;
        }
        let rotated = if i == 0 {
            v.clone()
        } else {
            backend.rotate_blocks(v, i as isize, n, s)
        };
        let adjusted = match m.cmp(&n) {
            std::cmp::Ordering::Greater => backend.cyclic_extend_blocks(&rotated, n, m, s),
            std::cmp::Ordering::Less => backend.truncate_blocks(&rotated, n, m, s),
            std::cmp::Ordering::Equal => rotated,
        };
        Some(matrix.diagonals[i].mul_into(backend, &adjusted))
    };

    let partials = map_chunks(parallelism, n, |range| {
        let mut acc: Option<B::Ciphertext> = None;
        for i in range {
            if let Some(t) = term(i) {
                acc = Some(match acc {
                    None => t,
                    Some(a) => backend.add(&a, &t),
                });
            }
        }
        acc
    });
    let mut acc: Option<B::Ciphertext> = None;
    for p in partials.into_iter().flatten() {
        acc = Some(match acc {
            None => p,
            Some(a) => backend.add(&a, &p),
        });
    }
    acc.unwrap_or_else(|| backend.encrypt_zeros_seeded(full_width, options.zero_tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_fhe::{BitVec, ClearBackend, FheBackend};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rows: usize, cols: usize, density: f64, rng: &mut SmallRng) -> BoolMatrix {
        let mut m = BoolMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    fn check_all_forms(m: &BoolMatrix, v: &BitVec, threads: usize) {
        let be = ClearBackend::with_defaults();
        let want = m.mat_vec(v);
        let ct = be.encrypt_bits(v);
        let par = Parallelism { threads };

        let plain = EncodedMatrix::encode_plain(&be, m);
        let got = mat_vec(&be, &plain, &ct, MatMulOptions::default(), par);
        assert_eq!(be.decrypt(&got), want, "plain {}x{}", m.rows(), m.cols());

        let skip = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions {
                skip_zero_diagonals: true,
                ..MatMulOptions::default()
            },
            par,
        );
        assert_eq!(
            be.decrypt(&skip),
            want,
            "skip-zero {}x{}",
            m.rows(),
            m.cols()
        );

        let enc = EncodedMatrix::encrypt(&be, m);
        let got = mat_vec(&be, &enc, &ct, MatMulOptions::default(), par);
        assert_eq!(
            be.decrypt(&got),
            want,
            "encrypted {}x{}",
            m.rows(),
            m.cols()
        );
    }

    #[test]
    fn square_matrices_match_oracle() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let m = random_matrix(8, 8, 0.4, &mut rng);
            let v = BitVec::from_fn(8, |_| rng.gen_bool(0.5));
            check_all_forms(&m, &v, 1);
        }
    }

    #[test]
    fn tall_matrices_cyclically_extend() {
        // m > n: the rotated vector is cyclically extended (the [x,y,z]
        // -> [x,y,z,x,...] rule of §4.1.2).
        let mut rng = SmallRng::seed_from_u64(2);
        for (rows, cols) in [(7, 3), (12, 5), (9, 2), (10, 10)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            check_all_forms(&m, &v, 1);
        }
    }

    #[test]
    fn wide_matrices_truncate() {
        let mut rng = SmallRng::seed_from_u64(3);
        for (rows, cols) in [(3, 7), (5, 12), (1, 9)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            check_all_forms(&m, &v, 1);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(4);
        let m = random_matrix(33, 47, 0.3, &mut rng);
        let v = BitVec::from_fn(47, |_| rng.gen_bool(0.5));
        check_all_forms(&m, &v, 8);
    }

    #[test]
    fn every_pool_degree_matches_the_sequential_result() {
        // Bitwise parity across even, pool-wide, and lopsided chunk
        // counts (7 divides neither 18 nor 29 diagonals).
        let mut rng = SmallRng::seed_from_u64(7);
        for (rows, cols) in [(18, 18), (12, 29)] {
            let m = random_matrix(rows, cols, 0.4, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            for threads in [2usize, 4, 7] {
                check_all_forms(&m, &v, threads);
            }
        }
    }

    #[test]
    fn multiplicative_depth_is_one() {
        let mut rng = SmallRng::seed_from_u64(5);
        let be = ClearBackend::with_defaults();
        for (rows, cols) in [(4, 4), (9, 3), (3, 9), (40, 40)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            let ct = be.encrypt_bits(&v);
            let enc = EncodedMatrix::encrypt(&be, &m);
            let out = mat_vec(
                &be,
                &enc,
                &ct,
                MatMulOptions::default(),
                Parallelism::sequential(),
            );
            assert_eq!(be.depth(&out), 1, "{rows}x{cols}");
        }
    }

    #[test]
    fn op_counts_match_table1b_shape() {
        // For an n-column matrix: n-1 rotations (offset 0 is free), n
        // multiplies, n-1 additions (paper Table 1b counts b, b, b+1
        // with the mask add included).
        let be = ClearBackend::with_defaults();
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 13;
        let m = random_matrix(n, n, 0.6, &mut rng);
        let v = BitVec::from_fn(n, |_| rng.gen_bool(0.5));
        let ct = be.encrypt_bits(&v);
        let enc = EncodedMatrix::encrypt(&be, &m);
        let before = be.meter().snapshot();
        let _ = mat_vec(
            &be,
            &enc,
            &ct,
            MatMulOptions::default(),
            Parallelism::sequential(),
        );
        let delta = be.meter().snapshot().since(&before);
        assert_eq!(delta.rotate, (n - 1) as u64);
        assert_eq!(delta.multiply, n as u64);
        assert_eq!(delta.add, (n - 1) as u64);
    }

    #[test]
    fn skip_zero_reduces_work_for_sparse_plain_models() {
        let be = ClearBackend::with_defaults();
        // Permutation-like matrix: one 1 per row -> at most n nonzero
        // diagonals out of 32.
        let mut m = BoolMatrix::zeros(8, 32);
        for r in 0..8 {
            m.set(r, r * 4, true);
        }
        let v = BitVec::from_fn(32, |i| i % 3 == 0);
        let ct = be.encrypt_bits(&v);
        let plain = EncodedMatrix::encode_plain(&be, &m);

        let before = be.meter().snapshot();
        let _ = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions::default(),
            Parallelism::sequential(),
        );
        let dense = be.meter().snapshot().since(&before);

        let before = be.meter().snapshot();
        let _ = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions {
                skip_zero_diagonals: true,
                ..MatMulOptions::default()
            },
            Parallelism::sequential(),
        );
        let sparse = be.meter().snapshot().since(&before);
        assert!(sparse.constant_multiply < dense.constant_multiply);
        assert!(sparse.constant_multiply <= 8);
    }

    #[test]
    fn all_zero_matrix_yields_zero_vector() {
        let be = ClearBackend::with_defaults();
        let m = BoolMatrix::zeros(5, 3);
        let v = BitVec::ones(3);
        let ct = be.encrypt_bits(&v);
        let plain = EncodedMatrix::encode_plain(&be, &m);
        let out = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions {
                skip_zero_diagonals: true,
                ..MatMulOptions::default()
            },
            Parallelism::sequential(),
        );
        assert_eq!(be.decrypt(&out), BitVec::zeros(5));
    }

    /// Packs `count` width-`n` vectors at `stride`, multiplies them all
    /// with one `mat_vec_packed`, and unpacks each block back out.
    fn packed_products<B: FheBackend>(
        be: &B,
        matrix: &BoolMatrix,
        vs: &[BitVec],
        stride: usize,
        threads: usize,
    ) -> Vec<BitVec> {
        let count = vs.len();
        let cts: Vec<_> = vs.iter().map(|v| be.encrypt_bits(v)).collect();
        let packed_v = be.pack_blocks(&cts, stride, count * stride);
        let plain = EncodedMatrix::encode_plain(be, matrix);
        let tiled = plain.pack(be, stride, count);
        let out = mat_vec_packed(
            be,
            &tiled,
            &packed_v,
            MatMulOptions::default(),
            Parallelism { threads },
        );
        (0..count)
            .map(|j| be.decrypt(&be.unpack_block(&out, j, stride, matrix.rows())))
            .collect()
    }

    #[test]
    fn packed_mat_vec_matches_per_query_products() {
        let be = ClearBackend::with_defaults();
        let mut rng = SmallRng::seed_from_u64(7);
        // Square, extending (rows > cols), and truncating (rows < cols)
        // shapes all share the block kernels with the sequential path.
        for (rows, cols) in [(4, 4), (7, 4), (3, 5)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let stride = rows.max(cols);
            for threads in [1, 3] {
                let vs: Vec<BitVec> = (0..3)
                    .map(|_| BitVec::from_fn(cols, |_| rng.gen_bool(0.5)))
                    .collect();
                let got = packed_products(&be, &m, &vs, stride, threads);
                for (j, v) in vs.iter().enumerate() {
                    assert_eq!(
                        got[j],
                        m.mat_vec(v),
                        "{rows}x{cols} block {j} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_mat_vec_costs_one_sequential_product() {
        // The amortisation claim, mechanically: the packed product over
        // any number of blocks spends exactly the ops of ONE sequential
        // product (block rotation = 1 automorphism, tiled diagonals are
        // plaintext re-encodes).
        let be = ClearBackend::with_defaults();
        let mut rng = SmallRng::seed_from_u64(8);
        for (rows, cols) in [(5, 5), (6, 4), (3, 5)] {
            let m = random_matrix(rows, cols, 0.5, &mut rng);
            let stride = rows.max(cols);
            let v = BitVec::from_fn(cols, |_| rng.gen_bool(0.5));
            let plain = EncodedMatrix::encode_plain(&be, &m);
            let tiled = plain.pack(&be, stride, 4);
            let cts: Vec<_> = (0..4).map(|_| be.encrypt_bits(&v)).collect();
            let packed_v = be.pack_blocks(&cts, stride, 4 * stride);
            let ct = be.encrypt_bits(&v);

            let before = be.meter().snapshot();
            let _ = mat_vec(
                &be,
                &plain,
                &ct,
                MatMulOptions::default(),
                Parallelism::sequential(),
            );
            let seq = be.meter().snapshot().since(&before);

            let before = be.meter().snapshot();
            let _ = mat_vec_packed(
                &be,
                &tiled,
                &packed_v,
                MatMulOptions::default(),
                Parallelism::sequential(),
            );
            let packed = be.meter().snapshot().since(&before);
            assert_eq!(
                packed, seq,
                "{rows}x{cols}: packed ops != one sequential product"
            );
        }
    }

    #[test]
    fn all_skipped_fallback_is_bitwise_deterministic_across_thread_counts() {
        // PR 4 caveat, closed: with every diagonal skipped the fallback
        // draws encryption randomness from the caller's pre-split
        // `zero_tag`, not the backend's shared stream — so concurrent
        // batches produce bitwise-identical ciphertexts no matter how
        // the scheduler interleaves them.
        use copse_fhe::BgvBackend;
        let run = |threads: usize| -> Vec<Vec<u8>> {
            let be = BgvBackend::tiny();
            let m = BoolMatrix::zeros(4, 4);
            let plain = EncodedMatrix::encode_plain(&be, &m);
            let cts: Vec<_> = (0..8).map(|_| be.encrypt_bits(&BitVec::ones(4))).collect();
            crate::parallel::map_indices(Parallelism { threads }, 8, |qi| {
                let out = mat_vec(
                    &be,
                    &plain,
                    &cts[qi],
                    MatMulOptions {
                        skip_zero_diagonals: true,
                        zero_tag: qi as u64,
                    },
                    Parallelism::sequential(),
                );
                be.serialize_ciphertext(&out)
            })
        };
        let baseline = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(
                run(threads),
                baseline,
                "nondeterministic at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "vector width")]
    fn width_mismatch_panics() {
        let be = ClearBackend::with_defaults();
        let m = BoolMatrix::zeros(4, 4);
        let plain = EncodedMatrix::encode_plain(&be, &m);
        let ct = be.encrypt_bits(&BitVec::zeros(5));
        let _ = mat_vec(
            &be,
            &plain,
            &ct,
            MatMulOptions::default(),
            Parallelism::sequential(),
        );
    }
}
