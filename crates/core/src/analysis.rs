//! Forest analysis: the compiler front-end.
//!
//! COPSE severs the control dependences of tree walking by reducing a
//! forest to flat index structures (paper §4.1.1):
//!
//! * branches enumerated in **preorder across the forest** (the `f` and
//!   `t` vectors);
//! * leaves enumerated left-to-right across the forest (the label
//!   sequence `L`);
//! * per-node **levels** (branches on the longest node→leaf path,
//!   inclusive; labels are level 0);
//! * per-leaf **ancestor paths** with the side (true/false) the leaf
//!   hangs off of — the raw material for level matrices and masks.

use copse_forest::model::{Forest, Node};

/// A branch in forest preorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchInfo {
    /// Feature compared at the branch.
    pub feature: usize,
    /// Fixed-point threshold.
    pub threshold: u64,
    /// Level of the branch (paper §4.1.1).
    pub level: u32,
    /// Which tree the branch belongs to.
    pub tree: usize,
}

/// One step on a leaf's root path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AncestorStep {
    /// Preorder index of the ancestor branch.
    pub branch: usize,
    /// `true` if the leaf lives in the ancestor's true (right)
    /// subtree.
    pub on_true_side: bool,
}

/// A leaf in forest order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeafInfo {
    /// Label index the leaf outputs.
    pub label: usize,
    /// Which tree the leaf belongs to.
    pub tree: usize,
    /// Root path, ordered root → leaf. Levels along the path strictly
    /// decrease.
    pub ancestors: Vec<AncestorStep>,
}

/// Flattened view of a forest.
#[derive(Clone, Debug)]
pub struct ForestAnalysis {
    branches: Vec<BranchInfo>,
    leaves: Vec<LeafInfo>,
    max_level: u32,
}

impl ForestAnalysis {
    /// Analyses a forest.
    pub fn new(forest: &Forest) -> Self {
        let mut branches = Vec::new();
        let mut leaves = Vec::new();
        for (tree_ix, tree) in forest.trees().iter().enumerate() {
            let mut path: Vec<AncestorStep> = Vec::new();
            visit(&tree.root, tree_ix, &mut path, &mut branches, &mut leaves);
            debug_assert!(path.is_empty());
        }
        let max_level = branches.iter().map(|b| b.level).max().unwrap_or(0);
        Self {
            branches,
            leaves,
            max_level,
        }
    }

    /// Branches in forest preorder (the paper's enumeration).
    pub fn branches(&self) -> &[BranchInfo] {
        &self.branches
    }

    /// Leaves in forest order.
    pub fn leaves(&self) -> &[LeafInfo] {
        &self.leaves
    }

    /// The paper's `b`.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Total leaves across the forest.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The paper's `d`: maximum branch level (0 for a forest of bare
    /// leaves).
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// The branch selected for `(level, leaf)` by the paper's rule
    /// (§4.2.3): the ancestor at exactly that level when one exists,
    /// otherwise the ancestor with the greatest level below it,
    /// otherwise the shallowest ancestor (the generalised `d4` rule).
    /// Returns `None` for leaves with no ancestors (single-leaf trees).
    pub fn branch_above(&self, level: u32, leaf: usize) -> Option<AncestorStep> {
        let ancestors = &self.leaves[leaf].ancestors;
        if ancestors.is_empty() {
            return None;
        }
        // Root path levels strictly decrease; scan from the leaf end
        // (highest index = smallest level) upward.
        let mut best_below: Option<AncestorStep> = None;
        for step in ancestors.iter().rev() {
            let l = self.branches[step.branch].level;
            match l.cmp(&level) {
                std::cmp::Ordering::Equal => return Some(*step),
                std::cmp::Ordering::Less => best_below = Some(*step),
                std::cmp::Ordering::Greater => break,
            }
        }
        // Greatest level below `level`, else the shallowest ancestor
        // overall (deepest-index step).
        Some(best_below.unwrap_or_else(|| *ancestors.last().expect("nonempty")))
    }
}

fn visit(
    node: &Node,
    tree: usize,
    path: &mut Vec<AncestorStep>,
    branches: &mut Vec<BranchInfo>,
    leaves: &mut Vec<LeafInfo>,
) {
    match node {
        Node::Leaf { label } => {
            leaves.push(LeafInfo {
                label: *label,
                tree,
                ancestors: path.clone(),
            });
        }
        Node::Branch {
            feature,
            threshold,
            low,
            high,
        } => {
            let index = branches.len();
            branches.push(BranchInfo {
                feature: *feature,
                threshold: *threshold,
                level: node.level(),
                tree,
            });
            path.push(AncestorStep {
                branch: index,
                on_true_side: false,
            });
            visit(low, tree, path, branches, leaves);
            path.last_mut().expect("pushed above").on_true_side = true;
            visit(high, tree, path, branches, leaves);
            path.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_forest::model::{Forest, Node, Tree};

    /// Paper Fig. 1 tree (see copse-forest model tests for the shape).
    fn figure1() -> Forest {
        let d2 = Node::branch(1, 10, Node::leaf(0), Node::leaf(1));
        let d3 = Node::branch(0, 20, Node::leaf(2), Node::leaf(3));
        let d1 = Node::branch(0, 30, d2, d3);
        let d4 = Node::branch(1, 40, Node::leaf(4), Node::leaf(5));
        let d0 = Node::branch(1, 50, d1, d4);
        Forest::new(
            2,
            8,
            (0..6).map(|i| format!("L{i}")).collect(),
            vec![Tree::new(d0)],
        )
        .unwrap()
    }

    #[test]
    fn preorder_enumeration_matches_figure1() {
        let a = ForestAnalysis::new(&figure1());
        // Preorder: d0, d1, d2, d3, d4 with features y,x,y,x,y.
        let feats: Vec<usize> = a.branches().iter().map(|b| b.feature).collect();
        assert_eq!(feats, vec![1, 0, 1, 0, 1]);
        let levels: Vec<u32> = a.branches().iter().map(|b| b.level).collect();
        assert_eq!(levels, vec![3, 2, 1, 1, 1]);
        assert_eq!(a.max_level(), 3);
        assert_eq!(a.branch_count(), 5);
        assert_eq!(a.leaf_count(), 6);
    }

    #[test]
    fn leaf_paths_record_sides() {
        let a = ForestAnalysis::new(&figure1());
        // L0: d0 false -> d1 false -> d2 false.
        let l0 = &a.leaves()[0];
        assert_eq!(l0.label, 0);
        assert_eq!(
            l0.ancestors
                .iter()
                .map(|s| (s.branch, s.on_true_side))
                .collect::<Vec<_>>(),
            vec![(0, false), (1, false), (2, false)]
        );
        // L3: d0 false -> d1 true -> d3 true.
        let l3 = &a.leaves()[3];
        assert_eq!(
            l3.ancestors
                .iter()
                .map(|s| (s.branch, s.on_true_side))
                .collect::<Vec<_>>(),
            vec![(0, false), (1, true), (3, true)]
        );
        // L5: d0 true -> d4 true.
        let l5 = &a.leaves()[5];
        assert_eq!(
            l5.ancestors
                .iter()
                .map(|s| (s.branch, s.on_true_side))
                .collect::<Vec<_>>(),
            vec![(0, true), (4, true)]
        );
    }

    #[test]
    fn branch_above_implements_the_d4_rule() {
        let a = ForestAnalysis::new(&figure1());
        // L4 (leaf index 4) has ancestors d0 (level 3) and d4 (level 1).
        // Level 1 -> d4; level 2 -> d4 (the paper's example: "d4 is
        // treated as part of level 1 and 2"); level 3 -> d0.
        assert_eq!(a.branch_above(1, 4).unwrap().branch, 4);
        assert_eq!(a.branch_above(2, 4).unwrap().branch, 4);
        assert_eq!(a.branch_above(3, 4).unwrap().branch, 0);
        // L0 has ancestors at levels 3, 2, 1: exact hits everywhere.
        assert_eq!(a.branch_above(1, 0).unwrap().branch, 2);
        assert_eq!(a.branch_above(2, 0).unwrap().branch, 1);
        assert_eq!(a.branch_above(3, 0).unwrap().branch, 0);
    }

    #[test]
    fn every_ancestor_is_covered_by_some_level() {
        // Correctness condition for the accumulation product: for each
        // leaf, every ancestor must be selected at >= 1 level.
        let a = ForestAnalysis::new(&figure1());
        for (leaf_ix, leaf) in a.leaves().iter().enumerate() {
            let selected: std::collections::HashSet<usize> = (1..=a.max_level())
                .filter_map(|l| a.branch_above(l, leaf_ix))
                .map(|s| s.branch)
                .collect();
            for step in &leaf.ancestors {
                assert!(
                    selected.contains(&step.branch),
                    "leaf {leaf_ix}: ancestor {} never selected",
                    step.branch
                );
            }
        }
    }

    #[test]
    fn shallow_leaf_under_deep_root_uses_fallback() {
        // Root with a leaf directly on the left and a depth-3 chain on
        // the right: the left leaf's only ancestor is the root at
        // level 4, so levels 1..3 must fall back to the root itself.
        let chain = Node::branch(
            0,
            3,
            Node::branch(
                0,
                2,
                Node::branch(0, 1, Node::leaf(0), Node::leaf(1)),
                Node::leaf(1),
            ),
            Node::leaf(1),
        );
        let root = Node::branch(0, 4, Node::leaf(0), chain);
        let f = Forest::new(1, 8, vec!["a".into(), "b".into()], vec![Tree::new(root)]).unwrap();
        let a = ForestAnalysis::new(&f);
        assert_eq!(a.max_level(), 4);
        // Leaf 0 is the bare left leaf.
        let leaf0 = a
            .leaves()
            .iter()
            .position(|l| l.ancestors.len() == 1)
            .unwrap();
        for level in 1..=4 {
            let s = a.branch_above(level, leaf0).unwrap();
            assert_eq!(s.branch, 0, "level {level} must select the root");
            assert!(!s.on_true_side);
        }
    }

    #[test]
    fn multi_tree_indexing_does_not_restart() {
        let t0 = Tree::new(Node::branch(0, 1, Node::leaf(0), Node::leaf(1)));
        let t1 = Tree::new(Node::branch(0, 2, Node::leaf(1), Node::leaf(0)));
        let f = Forest::new(1, 8, vec!["a".into(), "b".into()], vec![t0, t1]).unwrap();
        let a = ForestAnalysis::new(&f);
        assert_eq!(a.branch_count(), 2);
        assert_eq!(a.branches()[1].tree, 1);
        assert_eq!(a.leaves()[2].ancestors[0].branch, 1);
    }

    #[test]
    fn degenerate_leaf_tree_has_no_ancestors() {
        let f = Forest::new(1, 8, vec!["a".into()], vec![Tree::new(Node::leaf(0))]).unwrap();
        let a = ForestAnalysis::new(&f);
        assert_eq!(a.branch_count(), 0);
        assert_eq!(a.max_level(), 0);
        assert_eq!(a.branch_above(1, 0), None);
    }
}
