//! Thread-level parallelism helpers for the stage layer.
//!
//! The paper's runtime inherits multithreading from NTL; here the
//! equivalent is the shared [`copse_pool`] worker-pool runtime.
//! COPSE's stages expose embarrassingly parallel loops (diagonals
//! within a MatMul, bit planes, prefix rounds, queries within a
//! batch); [`map_chunks`] and [`map_indices`] split those index ranges
//! into contiguous chunks and fork them onto the **process-wide
//! persistent pool** ([`copse_pool::global`]) — no per-call thread
//! spawning, and every layer of the system (stage loops here, the
//! per-prime kernels inside `copse-fhe`, the server's batch workers)
//! shares one set of OS threads instead of oversubscribing the host.
//!
//! Determinism: chunk results are collected in chunk order and
//! combined on the caller, so a parallel map is **bitwise identical**
//! to its sequential counterpart — [`Parallelism::sequential`] remains
//! the differential oracle for every kernel built on these helpers.

use std::ops::Range;

pub use copse_pool::chunk_ranges;

/// Threading configuration for the evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads (1 = fully sequential).
    pub threads: usize,
}

impl Parallelism {
    /// Sequential execution.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// As many threads as the host advertises.
    pub fn max_available() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// `true` when more than one thread is configured.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Below this many items a parallel map runs sequentially. With the
/// persistent pool the old thread-spawn cost is gone, so the threshold
/// only guards degenerate scopes where queue dispatch would exceed the
/// work itself — which is why it is far lower than the spawn-per-call
/// era's 32. (Per-*item* cost still varies wildly: a ClearBackend op
/// is nanoseconds, a BGV rotation is milliseconds; the pool's
/// caller-helps scheduling keeps the overhead of a mispredicted fork
/// to a few queue operations.)
pub const MIN_PARALLEL_ITEMS: usize = 4;

/// Runs `worker` over the chunks of `0..n` on the shared worker pool
/// and returns the per-chunk results in chunk order. With one thread,
/// one chunk, or fewer than [`MIN_PARALLEL_ITEMS`] items, everything
/// runs inline on the caller and the pool is left untouched.
pub fn map_chunks<R, F>(parallelism: Parallelism, n: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = if n < MIN_PARALLEL_ITEMS {
        1
    } else {
        parallelism.threads
    };
    if threads <= 1 {
        return chunk_ranges(n, 1).into_iter().map(worker).collect();
    }
    copse_pool::global().scope_chunks(n, threads, worker)
}

/// Runs `f(i)` for every `i in 0..n`, in parallel chunks, returning
/// results in index order.
pub fn map_indices<R, F>(parallelism: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut chunks = map_chunks(parallelism, n, |range| range.map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(n);
    for chunk in &mut chunks {
        out.append(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn chunks_cover_range_without_overlap() {
        for n in [0usize, 1, 5, 64, 100] {
            for t in [1usize, 2, 7, 32] {
                let ranges = chunk_ranges(n, t);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} t={t}");
                assert!(ranges.len() <= t.max(1));
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let ranges = chunk_ranges(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn map_indices_preserves_order() {
        let out = map_indices(Parallelism { threads: 4 }, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let _ = map_chunks(Parallelism { threads: 8 }, 1000, |range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn sequential_path_runs_on_the_caller_thread() {
        // With one thread the closure runs on the caller's thread.
        let caller = std::thread::current().id();
        let ids = map_chunks(Parallelism::sequential(), 10, |_| {
            std::thread::current().id()
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn tiny_workloads_stay_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let ids = map_chunks(Parallelism { threads: 8 }, MIN_PARALLEL_ITEMS - 1, |_| {
            std::thread::current().id()
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn at_the_threshold_two_pool_threads_really_run() {
        // A rendezvous only two concurrently running threads can pass:
        // were both chunks executed serially on one thread, the
        // barrier would hang rather than report a wrong answer.
        let barrier = Barrier::new(2);
        let ids = map_chunks(Parallelism { threads: 2 }, MIN_PARALLEL_ITEMS, |range| {
            if range.start == 0 || range.end == MIN_PARALLEL_ITEMS {
                barrier.wait();
            }
            std::thread::current().id()
        });
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1], "chunks ran on distinct pool threads");
    }

    #[test]
    fn zero_items_is_fine() {
        let out: Vec<usize> = map_indices(Parallelism { threads: 4 }, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallelism_constructors() {
        assert!(!Parallelism::sequential().is_parallel());
        assert!(Parallelism::max_available().threads >= 1);
    }
}
