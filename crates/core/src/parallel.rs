//! Thread-level parallelism helpers.
//!
//! The paper's runtime inherits multithreading from NTL; here the
//! equivalent is a small set of utilities built on std's scoped
//! threads. COPSE's stages expose embarrassingly parallel loops
//! (diagonals within a MatMul, levels, prefix rounds); these helpers
//! split index ranges into contiguous chunks, one per worker.

use std::ops::Range;

/// Threading configuration for the evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Number of worker threads (1 = fully sequential).
    pub threads: usize,
}

impl Parallelism {
    /// Sequential execution.
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// As many threads as the host advertises.
    pub fn max_available() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// `true` when more than one thread is configured.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Splits `0..n` into at most `threads` contiguous chunks of nearly
/// equal size (empty ranges are omitted).
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Below this many items a parallel map runs sequentially: thread
/// spawning costs more than the work it would distribute. (This is
/// also why the paper's microbenchmarks profit far less from
/// multithreading than its real-world models, §8.2.)
pub const MIN_PARALLEL_ITEMS: usize = 32;

/// Runs `worker` over the chunks of `0..n` on scoped threads and
/// returns the per-chunk results in chunk order. With one thread, one
/// chunk, or fewer than [`MIN_PARALLEL_ITEMS`] items, no threads are
/// spawned.
pub fn map_chunks<R, F>(parallelism: Parallelism, n: usize, worker: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = if n < MIN_PARALLEL_ITEMS {
        1
    } else {
        parallelism.threads
    };
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(&worker).collect();
    }
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || worker(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Runs `f(i)` for every `i in 0..n`, in parallel chunks, returning
/// results in index order.
pub fn map_indices<R, F>(parallelism: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut chunks = map_chunks(parallelism, n, |range| range.map(&f).collect::<Vec<R>>());
    let mut out = Vec::with_capacity(n);
    for chunk in &mut chunks {
        out.append(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_range_without_overlap() {
        for n in [0usize, 1, 5, 64, 100] {
            for t in [1usize, 2, 7, 32] {
                let ranges = chunk_ranges(n, t);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} t={t}");
                assert!(ranges.len() <= t.max(1));
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let ranges = chunk_ranges(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn map_indices_preserves_order() {
        let out = map_indices(Parallelism { threads: 4 }, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let _ = map_chunks(Parallelism { threads: 8 }, 1000, |range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn sequential_path_spawns_no_threads() {
        // With one thread the closure runs on the caller's thread.
        let caller = std::thread::current().id();
        let ids = map_chunks(Parallelism::sequential(), 10, |_| {
            std::thread::current().id()
        });
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn tiny_workloads_stay_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let ids = map_chunks(Parallelism { threads: 8 }, MIN_PARALLEL_ITEMS - 1, |_| {
            std::thread::current().id()
        });
        assert!(ids.iter().all(|&id| id == caller));
        // At the threshold, threads do spawn.
        let ids = map_chunks(Parallelism { threads: 2 }, MIN_PARALLEL_ITEMS, |_| {
            std::thread::current().id()
        });
        assert!(ids.iter().any(|&id| id != caller));
    }

    #[test]
    fn zero_items_is_fine() {
        let out: Vec<usize> = map_indices(Parallelism { threads: 4 }, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallelism_constructors() {
        assert!(!Parallelism::sequential().is_parallel());
        assert!(Parallelism::max_available().threads >= 1);
    }
}
