//! Executable circuit cost model (paper §6, Tables 1 and 2).
//!
//! Two cost models live here:
//!
//! * [`ours`] — exact operation counts and multiplicative depth of
//!   *this* implementation, derived from the kernel structure. The
//!   complexity tests assert these against the instrumented meter
//!   op-for-op, so the formulas are guaranteed truthful.
//! * [`paper`] — the closed forms printed in the paper's Table 1/2
//!   (which describe the authors' HElib kernels). Small constants
//!   differ from ours — e.g. our accumulation uses `d-1` multiplies
//!   against the paper's `2d-2`, and our Hillis–Steele prefix scan
//!   is shallower than their SecComp — and EXPERIMENTS.md reports both
//!   side by side.
//!
//! All counts are parameterised on the paper's model shape quantities:
//! precision `p`, branches `b`, quantized branching `q`, level count
//! `d`, plus the leaf count and deployment form.

use crate::artifacts::ModelMeta;
use crate::compiler::Accumulation;
use crate::runtime::ModelForm;
use crate::seccomp::SecCompVariant;
use copse_fhe::OpCounts;

/// Shape of one evaluation for costing purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostInputs {
    /// Fixed-point precision `p`.
    pub precision: u32,
    /// Branch count `b`.
    pub branches: usize,
    /// Quantized branching `q`.
    pub quantized: usize,
    /// Total leaves.
    pub leaves: usize,
    /// Level count `d`.
    pub max_level: u32,
    /// Plain or encrypted model artifacts.
    pub form: ModelForm,
    /// Whether the reshuffle matrix was fused into the level matrices.
    pub fused: bool,
    /// Accumulation strategy.
    pub accumulation: Accumulation,
    /// SecComp strategy.
    pub comparator: SecCompVariant,
}

impl CostInputs {
    /// Builds cost inputs from compiled-model metadata with the
    /// default (paper-parity) comparator.
    pub fn from_meta(meta: &ModelMeta, form: ModelForm, fused: bool, acc: Accumulation) -> Self {
        Self {
            precision: meta.precision,
            branches: meta.branches,
            quantized: meta.quantized,
            leaves: meta.n_leaves,
            max_level: meta.max_level,
            form,
            fused,
            accumulation: acc,
            comparator: SecCompVariant::default(),
        }
    }
}

/// `ceil(log2 n)` with `log2ceil(n <= 1) = 0`.
pub fn log2ceil(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// Exact cost model of this implementation.
pub mod ours {
    use super::*;

    /// SecComp counts for precision `p` (matches
    /// `seccomp::secure_less_than` op-for-op).
    pub fn seccomp_counts(p: u32, form: ModelForm, variant: SecCompVariant) -> OpCounts {
        let p = u64::from(p);
        let mut c = OpCounts::default();
        // below: NOT (ConstantAdd) then threshold multiply.
        c.constant_add += p;
        match form {
            ModelForm::Encrypted => c.multiply += p,
            ModelForm::Plain => c.constant_multiply += p,
        }
        if p == 1 {
            return c;
        }
        // equality bits: XOR with threshold then NOT.
        match form {
            ModelForm::Encrypted => c.add += p - 1,
            ModelForm::Plain => c.constant_add += p - 1,
        }
        c.constant_add += p - 1;
        match variant {
            SecCompVariant::LadderPrefix => {
                // Term i multiplies i+1 factors: i multiplies each,
                // independently (Aloufi's per-term pairing).
                c.multiply += p * (p - 1) / 2;
            }
            SecCompVariant::SharedPrefix => {
                // Hillis-Steele scan over p-1 elements, then one
                // multiply per term.
                let n = p - 1;
                let mut step = 1;
                while step < n {
                    c.multiply += n - step;
                    step *= 2;
                }
                c.multiply += p - 1;
            }
        }
        // XOR fold of the terms.
        c.add += p - 1;
        c
    }

    /// Depth of a balanced pairwise product over factors with the
    /// given depths (mirrors `seccomp::balanced_product`).
    pub fn product_depth(mut depths: Vec<u32>) -> u32 {
        assert!(!depths.is_empty());
        while depths.len() > 1 {
            depths = depths
                .chunks(2)
                .map(|c| match c {
                    [a, b] => a.max(b) + 1,
                    [a] => *a,
                    _ => unreachable!(),
                })
                .collect();
        }
        depths[0]
    }

    /// SecComp output depth.
    pub fn seccomp_depth(p: u32, variant: SecCompVariant) -> u32 {
        if p == 1 {
            return 1;
        }
        match variant {
            SecCompVariant::LadderPrefix => (1..p)
                .map(|i| {
                    let mut depths = vec![1u32]; // below[i]
                    depths.extend(std::iter::repeat_n(0, i as usize)); // e's
                    product_depth(depths)
                })
                .max()
                .expect("p >= 2")
                .max(1),
            SecCompVariant::SharedPrefix => log2ceil(u64::from(p) - 1).max(1) + 1,
        }
    }

    /// One Halevi-Shoup MatMul over an `n`-column matrix: `n-1`
    /// rotations (offset 0 is free), `n` multiplies, `n-1` adds.
    pub fn matmul_counts(cols: usize, form: ModelForm) -> OpCounts {
        let n = cols as u64;
        let mut c = OpCounts::default();
        c.rotate += n.saturating_sub(1);
        match form {
            ModelForm::Encrypted => c.multiply += n,
            ModelForm::Plain => c.constant_multiply += n,
        }
        c.add += n.saturating_sub(1);
        c
    }

    /// All `d` level stages: one MatMul each plus the mask XOR.
    pub fn levels_counts(d: u32, cols: usize, form: ModelForm) -> OpCounts {
        let mut c = OpCounts::default();
        for _ in 0..d {
            c = c.plus(&matmul_counts(cols, form));
            match form {
                ModelForm::Encrypted => c.add += 1,
                ModelForm::Plain => c.constant_add += 1,
            }
        }
        c
    }

    /// Accumulation of `d` level results: `d-1` ciphertext multiplies
    /// under either strategy (they differ only in depth).
    pub fn accumulate_counts(d: u32) -> OpCounts {
        let mut c = OpCounts::default();
        c.multiply += u64::from(d.saturating_sub(1));
        c
    }

    /// Total counts for one classification.
    pub fn classify_counts(inputs: &CostInputs) -> OpCounts {
        let mut c = seccomp_counts(inputs.precision, inputs.form, inputs.comparator);
        let level_cols = if inputs.fused {
            inputs.quantized
        } else {
            c = c.plus(&matmul_counts(inputs.quantized, inputs.form));
            inputs.branches
        };
        c = c.plus(&levels_counts(inputs.max_level, level_cols, inputs.form));
        c.plus(&accumulate_counts(inputs.max_level))
    }

    /// Multiplicative depth of the full classification circuit. Both
    /// ciphertext-ciphertext and ciphertext-plaintext multiplies count
    /// one level, matching the clear backend's accounting.
    pub fn classify_depth(inputs: &CostInputs) -> u32 {
        let mut depth = seccomp_depth(inputs.precision, inputs.comparator);
        if !inputs.fused {
            depth += 1; // reshuffle MatMul
        }
        depth += 1; // level MatMul
        depth += match inputs.accumulation {
            Accumulation::BalancedTree => log2ceil(u64::from(inputs.max_level)),
            Accumulation::Linear => inputs.max_level.saturating_sub(1),
        };
        depth
    }

    /// Encrypt operations to deploy an encrypted model:
    /// `p + q + d(b+1)` (paper Table 1d; plaintext deployment costs 0).
    pub fn model_encrypt_counts(inputs: &CostInputs) -> OpCounts {
        let mut c = OpCounts::default();
        if inputs.form == ModelForm::Encrypted {
            let level_cols = if inputs.fused {
                inputs.quantized as u64
            } else {
                inputs.branches as u64
            };
            c.encrypt += u64::from(inputs.precision); // threshold planes
            if !inputs.fused {
                c.encrypt += inputs.quantized as u64; // reshuffle diagonals
            }
            c.encrypt += u64::from(inputs.max_level) * (level_cols + 1); // levels + masks
        }
        c
    }

    /// Encrypt operations for one query: `p` bit planes. The paper's
    /// Table 1e lists 1 (a fully packed query); we encrypt one
    /// ciphertext per bit plane, which is what its SecComp consumes.
    pub fn query_encrypt_counts(p: u32) -> OpCounts {
        let mut c = OpCounts::default();
        c.encrypt += u64::from(p);
        c
    }
}

/// The closed forms printed in the paper (Tables 1-2), for
/// side-by-side reporting. `log` is `ceil(log2 ·)`.
pub mod paper {
    use super::log2ceil;
    use copse_fhe::OpCounts;

    /// Table 1a: SecComp.
    pub fn seccomp_counts(p: u32) -> OpCounts {
        let p = u64::from(p);
        OpCounts {
            add: 4 * p - 2,
            constant_add: p,
            multiply: p * u64::from(log2ceil(p)) + 3 * p - 2,
            ..OpCounts::default()
        }
    }

    /// Table 1a: SecComp depth `2 log p + 1`.
    pub fn seccomp_depth(p: u32) -> u32 {
        2 * log2ceil(u64::from(p)) + 1
    }

    /// Table 1b: one level with `b` branches.
    pub fn level_counts(b: usize) -> OpCounts {
        let b = b as u64;
        OpCounts {
            rotate: b,
            add: b + 1,
            multiply: b,
            ..OpCounts::default()
        }
    }

    /// Table 1c: accumulation over `d` levels.
    pub fn accumulate_counts(d: u32) -> OpCounts {
        OpCounts {
            multiply: u64::from(2 * d).saturating_sub(2),
            ..OpCounts::default()
        }
    }

    /// Table 2: total evaluation counts.
    pub fn total_counts(p: u32, q: usize, b: usize, d: u32) -> OpCounts {
        let (p64, q64, b64, d64) = (u64::from(p), q as u64, b as u64, u64::from(d));
        OpCounts {
            encrypt: 1 + p64 + q64 + d64 * (b64 + 1),
            rotate: q64 + d64 * b64,
            add: 4 * p64 - 2 + q64 + d64 * (b64 + 1),
            constant_add: p64,
            multiply: p64 * u64::from(log2ceil(p64)) + 3 * p64 + q64 + d64 * b64 + 2 * d64 - 4,
            ..OpCounts::default()
        }
    }

    /// Table 2: total depth `2 log p + log d + 2`.
    pub fn total_depth(p: u32, d: u32) -> u32 {
        2 * log2ceil(u64::from(p)) + log2ceil(u64::from(d)) + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::CompileOptions;
    use crate::parallel::Parallelism;
    use crate::runtime::{Diane, EvalOptions, Maurice, Sally};
    use copse_fhe::{ClearBackend, FheBackend};
    use copse_forest::microbench::{self, table6_specs};

    #[test]
    fn log2ceil_values() {
        assert_eq!(log2ceil(0), 0);
        assert_eq!(log2ceil(1), 0);
        assert_eq!(log2ceil(2), 1);
        assert_eq!(log2ceil(3), 2);
        assert_eq!(log2ceil(8), 3);
        assert_eq!(log2ceil(9), 4);
    }

    /// The central honesty test: the formula module must predict the
    /// meter *exactly* for every microbenchmark model, in both model
    /// forms and both pipeline shapes.
    #[test]
    fn formulas_match_metered_execution_exactly() {
        for spec in &table6_specs()[..3] {
            let forest = microbench::generate(spec, 21);
            for form in [ModelForm::Plain, ModelForm::Encrypted] {
                for fused in [false, true] {
                    let be = ClearBackend::with_defaults();
                    let options = CompileOptions {
                        fuse_reshuffle: fused,
                        ..CompileOptions::default()
                    };
                    let maurice = Maurice::compile(&forest, options).unwrap();
                    let inputs = CostInputs::from_meta(
                        &maurice.compiled().meta,
                        form,
                        fused,
                        Accumulation::BalancedTree,
                    );

                    let before = be.meter().snapshot();
                    let deployed = maurice.deploy(&be, form);
                    let deploy_delta = be.meter().snapshot().since(&before);
                    assert_eq!(
                        deploy_delta.encrypt,
                        ours::model_encrypt_counts(&inputs).encrypt,
                        "{} {form:?} fused={fused}: deploy",
                        spec.name
                    );

                    let sally = Sally::host(&be, deployed);
                    let diane = Diane::new(&be, maurice.public_query_info());
                    let query = diane
                        .encrypt_features(&microbench::random_queries(&forest, 1, 5)[0])
                        .unwrap();

                    let before = be.meter().snapshot();
                    let result = sally.classify(&query);
                    let delta = be.meter().snapshot().since(&before);
                    let predicted = ours::classify_counts(&inputs);
                    assert_eq!(
                        delta, predicted,
                        "{} {form:?} fused={fused}: classify counts",
                        spec.name
                    );
                    assert_eq!(
                        be.depth(result.ciphertext()),
                        ours::classify_depth(&inputs),
                        "{} {form:?} fused={fused}: depth",
                        spec.name
                    );
                }
            }
        }
    }

    #[test]
    fn seccomp_depth_corner_cases() {
        use SecCompVariant::{LadderPrefix, SharedPrefix};
        for v in [LadderPrefix, SharedPrefix] {
            assert_eq!(ours::seccomp_depth(1, v), 1);
            assert_eq!(ours::seccomp_depth(2, v), 2);
        }
        assert_eq!(ours::seccomp_depth(8, SharedPrefix), log2ceil(7) + 1);
        // Ladder: largest term multiplies 8 factors, one at depth 1.
        assert_eq!(ours::seccomp_depth(8, LadderPrefix), 4);
    }

    #[test]
    fn product_depth_matches_log_bound() {
        assert_eq!(ours::product_depth(vec![0]), 0);
        assert_eq!(ours::product_depth(vec![0, 0]), 1);
        assert_eq!(ours::product_depth(vec![0; 8]), 3);
        // [1,0,0]: (1*0) at depth 2, then *0 at depth 3 (odd carry).
        assert_eq!(ours::product_depth(vec![1, 0, 0]), 3);
    }

    #[test]
    fn ladder_is_more_expensive_than_shared() {
        // Quadratic vs p log p: equal at p = 4, strictly worse beyond.
        let mult = |p, v| ours::seccomp_counts(p, ModelForm::Encrypted, v).multiply;
        assert_eq!(
            mult(4, SecCompVariant::LadderPrefix),
            mult(4, SecCompVariant::SharedPrefix)
        );
        for p in [8u32, 16, 32] {
            let ladder = mult(p, SecCompVariant::LadderPrefix);
            let shared = mult(p, SecCompVariant::SharedPrefix);
            assert!(ladder > shared, "p = {p}: {ladder} !> {shared}");
        }
    }

    #[test]
    fn linear_accumulation_depth() {
        let forest = microbench::generate(&table6_specs()[2], 2); // depth6
        let be = ClearBackend::with_defaults();
        let options = CompileOptions {
            accumulation: Accumulation::Linear,
            ..CompileOptions::default()
        };
        let maurice = Maurice::compile(&forest, options).unwrap();
        let inputs = CostInputs::from_meta(
            &maurice.compiled().meta,
            ModelForm::Encrypted,
            false,
            Accumulation::Linear,
        );
        let sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Encrypted),
            EvalOptions {
                parallelism: Parallelism::sequential(),
                ..EvalOptions::default()
            },
        );
        let diane = Diane::new(&be, maurice.public_query_info());
        let q = diane
            .encrypt_features(&microbench::random_queries(&forest, 1, 8)[0])
            .unwrap();
        let result = sally.classify(&q);
        assert_eq!(be.depth(result.ciphertext()), ours::classify_depth(&inputs));
        // Linear is strictly deeper than balanced for d >= 3.
        let balanced = CostInputs {
            accumulation: Accumulation::BalancedTree,
            ..inputs
        };
        assert!(ours::classify_depth(&inputs) > ours::classify_depth(&balanced));
    }

    #[test]
    fn our_depth_is_within_paper_budget() {
        // The paper's depth bound 2 log p + log d + 2 must dominate our
        // (shallower) pipeline for every benchmark shape.
        for spec in table6_specs() {
            let forest = microbench::generate(&spec, 2);
            let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
            let meta = maurice.compiled().meta.clone();
            let inputs = CostInputs::from_meta(
                &meta,
                ModelForm::Encrypted,
                false,
                Accumulation::BalancedTree,
            );
            assert!(
                ours::classify_depth(&inputs) <= paper::total_depth(meta.precision, meta.max_level),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn paper_closed_forms_reproduce_printed_examples() {
        // Table 1a at p = 8: Add 30, ConstAdd 8, Mult 8*3+24-2 = 46.
        let c = paper::seccomp_counts(8);
        assert_eq!(c.add, 30);
        assert_eq!(c.constant_add, 8);
        assert_eq!(c.multiply, 46);
        assert_eq!(paper::seccomp_depth(8), 7);
        // Table 1b at b = 5.
        let l = paper::level_counts(5);
        assert_eq!((l.rotate, l.add, l.multiply), (5, 6, 5));
        // Table 1c at d = 5: 8 multiplies.
        assert_eq!(paper::accumulate_counts(5).multiply, 8);
        assert_eq!(paper::total_depth(8, 5), 2 * 3 + 3 + 2);
        // Table 2 encrypt total at p=8, q=6, b=5, d=3: 1+8+6+3*6 = 33.
        assert_eq!(paper::total_counts(8, 6, 5, 3).encrypt, 33);
    }

    #[test]
    fn ours_and_paper_agree_on_asymptotics() {
        // Both models must scale identically in the dominant terms:
        // multiplies roughly linear in d*b.
        let base = |d: u32, b: usize| CostInputs {
            precision: 8,
            branches: b,
            quantized: b + 2,
            leaves: b + 2,
            max_level: d,
            form: ModelForm::Encrypted,
            fused: false,
            accumulation: Accumulation::BalancedTree,
            comparator: SecCompVariant::default(),
        };
        let ours_small = ours::classify_counts(&base(4, 50));
        let ours_big = ours::classify_counts(&base(4, 100));
        let paper_small = paper::total_counts(8, 52, 50, 4);
        let paper_big = paper::total_counts(8, 102, 100, 4);
        let ours_ratio = ours_big.multiply as f64 / ours_small.multiply as f64;
        let paper_ratio = paper_big.multiply as f64 / paper_small.multiply as f64;
        assert!(
            (ours_ratio - paper_ratio).abs() < 0.12,
            "{ours_ratio} vs {paper_ratio}"
        );
    }

    #[test]
    fn query_encrypt_counts_are_p() {
        assert_eq!(ours::query_encrypt_counts(8).encrypt, 8);
        assert_eq!(ours::query_encrypt_counts(16).encrypt, 16);
    }
}
