//! Wire encoding for the protocol's messages.
//!
//! The COPSE workflow (paper Fig. 2) starts with a handshake: Maurice
//! reveals the maximum feature multiplicity `K` (via Sally) together
//! with whatever the configuration's leakage profile allows — feature
//! count, precision, result width and the codebook — so Diane can pad,
//! encrypt and later decode. This module gives that handshake a
//! concrete byte format (length-prefixed, big-endian, versioned) so
//! parties can live in separate processes.
//!
//! Beyond the standalone [`QueryInfo`] message, the module defines the
//! [`Frame`] vocabulary of the `copse-server` inference service:
//! session handshake ([`Frame::ClientHello`] / [`Frame::ServerHello`]),
//! model-registry discovery ([`Frame::ListModels`] /
//! [`Frame::ModelList`]), encrypted queries and results
//! ([`Frame::Query`] / [`Frame::Result`]), service statistics, errors,
//! and orderly shutdown. Ciphertext *contents* stay backend-specific —
//! frames carry the opaque byte strings produced by
//! `FheBackend::serialize_ciphertext` — but their framing is fixed
//! here, so clients and servers can live on opposite ends of a socket.
//! Every frame starts with the same version byte and a tag; decoding
//! rejects unknown versions and tags loudly.

use crate::runtime::QueryInfo;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Current format version. Version 2 widened [`Frame::StatsReport`]
/// with the server's pool-parallelism degree; version 3 extends it
/// again with the latency breakdown (queue-wait vs evaluation time
/// and per-model percentiles); version 4 extends [`Frame::Error`]
/// with an optional structured deploy-rejection detail
/// ([`RejectionDetail`]); version 5 adds the overload vocabulary —
/// the [`Frame::Busy`] load-shed answer ([`ShedDetail`]), the
/// [`Frame::Query`] deadline budget, and the shed/timeout counters
/// plus queue-depth gauges in [`Frame::StatsReport`]. Decoding
/// accepts versions 2 through 5; [`encode_frame_versioned`] can still
/// emit older bytes so a server can keep serving old clients at the
/// version they spoke first.
pub const WIRE_VERSION: u8 = 5;
/// Oldest version this build still decodes and can re-encode.
pub const WIRE_VERSION_MIN: u8 = 2;
/// Message tag for [`QueryInfo`].
const TAG_QUERY_INFO: u8 = 0x51;
/// Session-opening request naming a model.
const TAG_CLIENT_HELLO: u8 = 0x01;
/// Session grant: id, model form, and the model's public query info.
const TAG_SERVER_HELLO: u8 = 0x02;
/// Registry listing request.
const TAG_LIST_MODELS: u8 = 0x03;
/// Registry listing response.
const TAG_MODEL_LIST: u8 = 0x04;
/// Encrypted inference query (serialized bit-plane ciphertexts).
const TAG_QUERY: u8 = 0x05;
/// Encrypted inference result (one serialized ciphertext).
const TAG_RESULT: u8 = 0x06;
/// Service statistics request.
const TAG_STATS: u8 = 0x07;
/// Service statistics response.
const TAG_STATS_REPORT: u8 = 0x08;
/// Server-side failure description.
const TAG_ERROR: u8 = 0x09;
/// Orderly session close.
const TAG_BYE: u8 = 0x0A;
/// Load-shed answer: the server refused a query it could not finish
/// (version 5; older sessions get a plain [`Frame::Error`] instead).
const TAG_BUSY: u8 = 0x0B;

/// Upper bound a decoder accepts for [`ShedDetail::retry_after_ms`].
/// A server asking a client to back off for more than ten minutes is
/// corrupt framing, not a serving hint; hostile values must not reach
/// retry arithmetic.
pub const MAX_RETRY_AFTER_MS: u32 = 600_000;
/// Upper bound a decoder accepts for [`Frame::Query`]'s `deadline_ms`
/// budget (one hour). A query that tolerates more waiting than this
/// is indistinguishable from one with no deadline at all.
pub const MAX_DEADLINE_MS: u32 = 3_600_000;

/// Errors from [`decode_query_info`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unexpected message tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
    /// A codebook entry referenced a label out of range.
    BadCodebook {
        /// Offending label index.
        index: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Bytes remained after a complete frame body (framing
    /// corruption; only [`decode_frame`] checks this).
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The error-detail presence flag was neither 0 nor 1 (v4).
    BadDetailFlag(u8),
    /// An unknown [`RejectionCode`] byte in an error detail (v4).
    BadRejectionCode(u8),
    /// A bounded numeric field carried a value outside its documented
    /// range (v5: `retry_after_ms`, `deadline_ms`). Hostile or corrupt
    /// values are rejected at decode so they can never reach backoff
    /// or deadline arithmetic.
    FieldOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unexpected message tag {t:#x}"),
            WireError::BadString => write!(f, "invalid UTF-8 in string field"),
            WireError::BadCodebook { index, labels } => {
                write!(f, "codebook entry {index} out of range for {labels} labels")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
            WireError::BadDetailFlag(b) => {
                write!(f, "error-detail flag must be 0 or 1, got {b}")
            }
            WireError::BadRejectionCode(b) => {
                write!(f, "unknown rejection code {b}")
            }
            WireError::FieldOutOfRange { field, value } => {
                write!(f, "field {field} value {value} outside its wire range")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string field too long");
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    need(buf, 2)?;
    let len = buf.get_u16() as usize;
    need(buf, len)?;
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadString)
}

fn put_blob(buf: &mut BytesMut, blob: &[u8]) {
    assert!(
        u32::try_from(blob.len()).is_ok(),
        "blob field too long for a u32 length prefix"
    );
    buf.put_u32(blob.len() as u32);
    buf.put_slice(blob);
}

fn get_blob(buf: &mut Bytes) -> Result<Bytes, WireError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    need(buf, len)?;
    Ok(buf.copy_to_bytes(len))
}

fn put_query_info_body(buf: &mut BytesMut, info: &QueryInfo) {
    buf.put_u32(info.max_multiplicity as u32);
    buf.put_u32(info.feature_count as u32);
    buf.put_u32(info.precision);
    buf.put_u32(info.n_leaves as u32);
    buf.put_u32(info.label_names.len() as u32);
    for name in &info.label_names {
        put_string(buf, name);
    }
    buf.put_u32(info.codebook.len() as u32);
    for &label in &info.codebook {
        buf.put_u32(label as u32);
    }
}

fn get_query_info_body(buf: &mut Bytes) -> Result<QueryInfo, WireError> {
    need(buf, 20)?;
    let max_multiplicity = buf.get_u32() as usize;
    let feature_count = buf.get_u32() as usize;
    let precision = buf.get_u32();
    let n_leaves = buf.get_u32() as usize;
    let n_labels = buf.get_u32() as usize;

    let mut label_names = Vec::with_capacity(n_labels.min(1024));
    for _ in 0..n_labels {
        label_names.push(get_string(buf)?);
    }

    need(buf, 4)?;
    let n_codebook = buf.get_u32() as usize;
    let mut codebook = Vec::with_capacity(n_codebook.min(1 << 20));
    for _ in 0..n_codebook {
        need(buf, 4)?;
        let label = buf.get_u32() as usize;
        if label >= label_names.len() {
            return Err(WireError::BadCodebook {
                index: label,
                labels: label_names.len(),
            });
        }
        codebook.push(label);
    }

    Ok(QueryInfo {
        max_multiplicity,
        feature_count,
        precision,
        n_leaves,
        label_names,
        codebook,
    })
}

/// Serialises the public query information Maurice reveals to Diane.
pub fn encode_query_info(info: &QueryInfo) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + 16 * info.label_names.len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(TAG_QUERY_INFO);
    put_query_info_body(&mut buf, info);
    buf.freeze()
}

/// Parses a [`QueryInfo`] message.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, version/tag mismatch,
/// invalid UTF-8, or codebook entries outside the label alphabet.
pub fn decode_query_info(mut buf: Bytes) -> Result<QueryInfo, WireError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let tag = buf.get_u8();
    if tag != TAG_QUERY_INFO {
        return Err(WireError::BadTag(tag));
    }
    get_query_info_body(&mut buf)
}

/// One message of the `copse-server` inference protocol.
///
/// A session is: `ClientHello` → `ServerHello`, then any number of
/// `Query` → `Result` (or `Error`) exchanges plus optional
/// `ListModels`/`Stats` requests, ended by `Bye`. Ciphertext fields
/// hold backend-serialized bytes (`FheBackend::serialize_ciphertext`);
/// the protocol never looks inside them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Opens a session against one registered model.
    ClientHello {
        /// Registry name of the model to query.
        model: String,
    },
    /// Grants a session: what Diane needs to form queries.
    ServerHello {
        /// Server-assigned session id.
        session: u64,
        /// `true` when the model is deployed encrypted.
        encrypted_model: bool,
        /// The model's public query information.
        info: QueryInfo,
    },
    /// Asks for the model registry's contents.
    ListModels,
    /// The model registry's contents.
    ModelList {
        /// Registered model names, in registration order.
        models: Vec<String>,
    },
    /// An encrypted query: the `p` serialized bit-plane ciphertexts.
    Query {
        /// Client-chosen id echoed in the matching [`Frame::Result`].
        id: u64,
        /// Client deadline budget in milliseconds, measured by the
        /// *server* from the moment it reads the frame (clocks are
        /// never compared across the wire — see docs/ROBUSTNESS.md).
        /// `0` means no deadline. Version-5 extension: older
        /// encodings omit it and decode as `0`. Values above
        /// [`MAX_DEADLINE_MS`] are rejected at decode.
        deadline_ms: u32,
        /// Serialized ciphertexts, MSB plane first.
        planes: Vec<Bytes>,
    },
    /// An encrypted classification result.
    Result {
        /// The id of the query this answers.
        id: u64,
        /// Number of queries coalesced into the evaluation pass that
        /// produced this result (≥ 1; > 1 means batching happened).
        batch_size: u32,
        /// The serialized N-hot result ciphertext.
        ciphertext: Bytes,
    },
    /// Asks for service statistics.
    Stats,
    /// Service statistics (whole-server, all models).
    ///
    /// The latency fields (`queue_wait_nanos`, `eval_nanos`,
    /// `model_latencies`) are version-3 extensions: a version-2
    /// encoding omits them and a version-2 body decodes with them
    /// zeroed/empty.
    StatsReport {
        /// Inference queries answered so far.
        queries_served: u64,
        /// Evaluation passes run (each serves ≥ 1 query).
        batches: u64,
        /// Largest batch coalesced so far.
        max_batch: u32,
        /// Parallel degree the server evaluates with (workers of the
        /// shared `copse-pool` runtime a pass may fork onto; 1 =
        /// sequential).
        pool_threads: u32,
        /// Homomorphic op totals per pipeline stage:
        /// `[comparison, reshuffle, levels, accumulate]`.
        stage_ops: [u64; 4],
        /// Total nanoseconds queries spent waiting in the batching
        /// queue before an evaluation pass picked them up (v3).
        queue_wait_nanos: u64,
        /// Total nanoseconds spent inside evaluation passes,
        /// attributed per query (v3).
        eval_nanos: u64,
        /// Per-model end-to-end latency percentiles (v3).
        model_latencies: Vec<ModelLatency>,
        /// Queries refused with [`Frame::Busy`] because their model's
        /// bounded queue was full (v5).
        queries_shed: u64,
        /// Accepted queries shed at dequeue because their deadline
        /// budget expired in the queue — never evaluated (v5).
        queries_expired: u64,
        /// Connections closed by the server's read/write timeouts
        /// (slow-loris bound, v5).
        conn_timeouts: u64,
        /// Per-model live queue-depth gauges and shed counters (v5).
        queue_depths: Vec<ModelQueueDepth>,
    },
    /// A request failed; the session stays open.
    Error {
        /// Human-readable failure description.
        message: String,
        /// Structured deploy-rejection diagnostic, when the failure is
        /// a model the static analyzer refused to admit (version-4
        /// extension; older encodings carry only the message).
        detail: Option<RejectionDetail>,
    },
    /// Orderly session close.
    Bye,
    /// The server refused a query it could not finish: the model's
    /// bounded queue was full when the query arrived. The query was
    /// **not** accepted — retrying after the hinted backoff is safe
    /// and the idiomatic client behaviour (see `RetryPolicy` in
    /// `copse-server`). Version-5 vocabulary: sessions speaking
    /// version 4 or older receive a plain [`Frame::Error`] carrying
    /// the same text instead.
    Busy {
        /// The id of the query being shed.
        id: u64,
        /// Structured overload diagnostic.
        detail: ShedDetail,
    },
}

/// Why and for how long a [`Frame::Busy`] shed happened (wire
/// version 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShedDetail {
    /// Registry name of the overloaded model.
    pub model: String,
    /// Depth of the model's job queue at shed time (its configured
    /// bound — the queue was full).
    pub queue_depth: u32,
    /// Server's backoff hint in milliseconds: how long a retrying
    /// client should wait before its next attempt. Bounded by
    /// [`MAX_RETRY_AFTER_MS`]; decoders reject larger values.
    pub retry_after_ms: u32,
}

/// Why deploy-time admission refused a model (wire version 4).
///
/// Mirrors the verdicts of the `copse-analyze` static circuit
/// analysis: the compiled pipeline's requirements were checked against
/// the serving backend's capabilities before any ciphertext existed,
/// and one of these budgets or capabilities fell short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectionCode {
    /// Predicted multiplicative depth exceeds the backend's
    /// `depth_budget()` — evaluation would exhaust the noise budget
    /// and decrypt garbage.
    DepthExceeded,
    /// The circuit needs slot rotations and the backend cannot rotate
    /// (the negacyclic-flavored packed backend has no slot structure).
    SlotRotationUnsupported,
    /// A pipeline operand is wider than the backend's slot capacity.
    SlotCapacityExceeded,
}

impl RejectionCode {
    /// Wire byte for this code.
    pub fn to_byte(self) -> u8 {
        match self {
            RejectionCode::DepthExceeded => 1,
            RejectionCode::SlotRotationUnsupported => 2,
            RejectionCode::SlotCapacityExceeded => 3,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// [`WireError::BadRejectionCode`] for bytes this build does not
    /// know.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(RejectionCode::DepthExceeded),
            2 => Ok(RejectionCode::SlotRotationUnsupported),
            3 => Ok(RejectionCode::SlotCapacityExceeded),
            other => Err(WireError::BadRejectionCode(other)),
        }
    }
}

/// Structured deploy-rejection diagnostic carried by [`Frame::Error`]
/// from wire version 4 on.
///
/// `required`/`available` quantify the failed check in the code's
/// units: multiplicative depth levels for
/// [`RejectionCode::DepthExceeded`], rotation count vs zero for
/// [`RejectionCode::SlotRotationUnsupported`], slot widths for
/// [`RejectionCode::SlotCapacityExceeded`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectionDetail {
    /// Registry name of the refused model.
    pub model: String,
    /// Which admission check failed.
    pub code: RejectionCode,
    /// What the circuit statically requires.
    pub required: u64,
    /// What the backend provides.
    pub available: u64,
}

/// One model's end-to-end latency summary inside
/// [`Frame::StatsReport`] (wire version 3).
///
/// Percentiles come from the server's log-bucketed
/// `LatencyHistogram`, so each is the upper bound of the bucket the
/// rank falls in, capped at the exact maximum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelLatency {
    /// Registry name of the model.
    pub model: String,
    /// Queries this model has answered.
    pub queries: u64,
    /// Median end-to-end latency in nanoseconds.
    pub p50_nanos: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_nanos: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_nanos: u64,
    /// Worst observed latency in nanoseconds (exact).
    pub max_nanos: u64,
}

/// One model's live queue gauge inside [`Frame::StatsReport`] (wire
/// version 5): how deep its bounded job queue currently is and how
/// many queries it has shed so far.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelQueueDepth {
    /// Registry name of the model.
    pub model: String,
    /// Jobs waiting in the model's bounded queue at snapshot time.
    pub depth: u32,
    /// Configured bound of that queue.
    pub capacity: u32,
    /// Queries this model has refused with [`Frame::Busy`].
    pub shed: u64,
}

impl Frame {
    /// The frame's wire tag (exposed for diagnostics).
    pub fn tag(&self) -> u8 {
        match self {
            Frame::ClientHello { .. } => TAG_CLIENT_HELLO,
            Frame::ServerHello { .. } => TAG_SERVER_HELLO,
            Frame::ListModels => TAG_LIST_MODELS,
            Frame::ModelList { .. } => TAG_MODEL_LIST,
            Frame::Query { .. } => TAG_QUERY,
            Frame::Result { .. } => TAG_RESULT,
            Frame::Stats => TAG_STATS,
            Frame::StatsReport { .. } => TAG_STATS_REPORT,
            Frame::Error { .. } => TAG_ERROR,
            Frame::Bye => TAG_BYE,
            Frame::Busy { .. } => TAG_BUSY,
        }
    }
}

/// Serialises one protocol frame (version byte, tag, body) at the
/// current [`WIRE_VERSION`].
pub fn encode_frame(frame: &Frame) -> Bytes {
    encode_frame_versioned(frame, WIRE_VERSION)
}

/// Serialises one protocol frame at an explicit wire version, for
/// sessions negotiated with an older client: an old peer rejects
/// *any* frame carrying a newer version byte, so a server answering
/// such a session must encode every response — not just stats — at
/// the session's version. Two frames have version-dependent bodies:
/// [`Frame::StatsReport`] (version 2 drops the latency extension,
/// versions below 5 drop the overload counters), [`Frame::Error`]
/// (versions below 4 drop the structured rejection detail), and
/// [`Frame::Query`] (versions below 5 drop the deadline budget).
///
/// # Panics
///
/// Panics if `version` is outside
/// [`WIRE_VERSION_MIN`]`..=`[`WIRE_VERSION`], or when asked to encode
/// [`Frame::Busy`] below version 5 — that frame does not exist in the
/// older vocabularies, and a server answering an old session must
/// send a plain [`Frame::Error`] instead (which `copse-server` does).
pub fn encode_frame_versioned(frame: &Frame, version: u8) -> Bytes {
    assert!(
        (WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version),
        "cannot encode wire version {version}"
    );
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(version);
    buf.put_u8(frame.tag());
    match frame {
        Frame::ClientHello { model } => put_string(&mut buf, model),
        Frame::ServerHello {
            session,
            encrypted_model,
            info,
        } => {
            buf.put_u64(*session);
            buf.put_u8(u8::from(*encrypted_model));
            put_query_info_body(&mut buf, info);
        }
        Frame::ListModels | Frame::Stats | Frame::Bye => {}
        Frame::ModelList { models } => {
            buf.put_u32(models.len() as u32);
            for name in models {
                put_string(&mut buf, name);
            }
        }
        Frame::Query {
            id,
            deadline_ms,
            planes,
        } => {
            buf.put_u64(*id);
            // The deadline budget exists only from version 5 on; an
            // older body goes straight from the id to the plane count
            // (the deadline is silently dropped — an old server would
            // not have honoured it anyway).
            if version >= 5 {
                buf.put_u32(*deadline_ms);
            }
            buf.put_u32(planes.len() as u32);
            for plane in planes {
                put_blob(&mut buf, plane);
            }
        }
        Frame::Result {
            id,
            batch_size,
            ciphertext,
        } => {
            buf.put_u64(*id);
            buf.put_u32(*batch_size);
            put_blob(&mut buf, ciphertext);
        }
        Frame::StatsReport {
            queries_served,
            batches,
            max_batch,
            pool_threads,
            stage_ops,
            queue_wait_nanos,
            eval_nanos,
            model_latencies,
            queries_shed,
            queries_expired,
            conn_timeouts,
            queue_depths,
        } => {
            buf.put_u64(*queries_served);
            buf.put_u64(*batches);
            buf.put_u32(*max_batch);
            buf.put_u32(*pool_threads);
            for &ops in stage_ops {
                buf.put_u64(ops);
            }
            // The latency extension exists only from version 3 on; a
            // version-2 body ends with the stage ops.
            if version >= 3 {
                buf.put_u64(*queue_wait_nanos);
                buf.put_u64(*eval_nanos);
                buf.put_u32(model_latencies.len() as u32);
                for lat in model_latencies {
                    put_string(&mut buf, &lat.model);
                    buf.put_u64(lat.queries);
                    buf.put_u64(lat.p50_nanos);
                    buf.put_u64(lat.p90_nanos);
                    buf.put_u64(lat.p99_nanos);
                    buf.put_u64(lat.max_nanos);
                }
            }
            // The overload counters exist only from version 5 on.
            if version >= 5 {
                buf.put_u64(*queries_shed);
                buf.put_u64(*queries_expired);
                buf.put_u64(*conn_timeouts);
                buf.put_u32(queue_depths.len() as u32);
                for q in queue_depths {
                    put_string(&mut buf, &q.model);
                    buf.put_u32(q.depth);
                    buf.put_u32(q.capacity);
                    buf.put_u64(q.shed);
                }
            }
        }
        Frame::Error { message, detail } => {
            put_string(&mut buf, message);
            // The structured detail exists only from version 4 on; an
            // older body is just the message, byte-identical to what
            // old peers always parsed.
            if version >= 4 {
                match detail {
                    None => buf.put_u8(0),
                    Some(d) => {
                        buf.put_u8(1);
                        put_string(&mut buf, &d.model);
                        buf.put_u8(d.code.to_byte());
                        buf.put_u64(d.required);
                        buf.put_u64(d.available);
                    }
                }
            }
        }
        Frame::Busy { id, detail } => {
            assert!(
                version >= 5,
                "Busy has no encoding below wire version 5; \
                 answer old sessions with Frame::Error instead"
            );
            buf.put_u64(*id);
            put_string(&mut buf, &detail.model);
            buf.put_u32(detail.queue_depth);
            buf.put_u32(detail.retry_after_ms.min(MAX_RETRY_AFTER_MS));
        }
    }
    buf.freeze()
}

/// Parses one protocol frame.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, an unknown version byte, an
/// unknown tag, invalid UTF-8, or out-of-range codebook entries.
pub fn decode_frame(buf: Bytes) -> Result<Frame, WireError> {
    decode_frame_with_version(buf).map(|(frame, _)| frame)
}

/// Parses one protocol frame, also reporting the wire version it was
/// encoded at — the server uses this to remember which version a
/// session's client speaks and answer in kind.
///
/// # Errors
///
/// Same as [`decode_frame`].
pub fn decode_frame_with_version(mut buf: Bytes) -> Result<(Frame, u8), WireError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let tag = buf.get_u8();
    let frame = match tag {
        TAG_CLIENT_HELLO => Frame::ClientHello {
            model: get_string(&mut buf)?,
        },
        TAG_SERVER_HELLO => {
            need(&buf, 9)?;
            let session = buf.get_u64();
            let encrypted_model = buf.get_u8() != 0;
            Frame::ServerHello {
                session,
                encrypted_model,
                info: get_query_info_body(&mut buf)?,
            }
        }
        TAG_LIST_MODELS => Frame::ListModels,
        TAG_MODEL_LIST => {
            need(&buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut models = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                models.push(get_string(&mut buf)?);
            }
            Frame::ModelList { models }
        }
        TAG_QUERY => {
            need(&buf, 12)?;
            let id = buf.get_u64();
            let deadline_ms = if version >= 5 {
                let ms = buf.get_u32();
                need(&buf, 4)?;
                if ms > MAX_DEADLINE_MS {
                    return Err(WireError::FieldOutOfRange {
                        field: "deadline_ms",
                        value: u64::from(ms),
                    });
                }
                ms
            } else {
                0
            };
            let n = buf.get_u32() as usize;
            let mut planes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                planes.push(get_blob(&mut buf)?);
            }
            Frame::Query {
                id,
                deadline_ms,
                planes,
            }
        }
        TAG_RESULT => {
            need(&buf, 12)?;
            let id = buf.get_u64();
            let batch_size = buf.get_u32();
            Frame::Result {
                id,
                batch_size,
                ciphertext: get_blob(&mut buf)?,
            }
        }
        TAG_STATS => Frame::Stats,
        TAG_STATS_REPORT => {
            need(&buf, 56)?;
            let queries_served = buf.get_u64();
            let batches = buf.get_u64();
            let max_batch = buf.get_u32();
            let pool_threads = buf.get_u32();
            let mut stage_ops = [0u64; 4];
            for slot in &mut stage_ops {
                *slot = buf.get_u64();
            }
            let (mut queue_wait_nanos, mut eval_nanos) = (0u64, 0u64);
            let mut model_latencies = Vec::new();
            if version >= 3 {
                need(&buf, 20)?;
                queue_wait_nanos = buf.get_u64();
                eval_nanos = buf.get_u64();
                let n = buf.get_u32() as usize;
                model_latencies.reserve(n.min(1024));
                for _ in 0..n {
                    let model = get_string(&mut buf)?;
                    need(&buf, 40)?;
                    model_latencies.push(ModelLatency {
                        model,
                        queries: buf.get_u64(),
                        p50_nanos: buf.get_u64(),
                        p90_nanos: buf.get_u64(),
                        p99_nanos: buf.get_u64(),
                        max_nanos: buf.get_u64(),
                    });
                }
            }
            let (mut queries_shed, mut queries_expired, mut conn_timeouts) = (0u64, 0u64, 0u64);
            let mut queue_depths = Vec::new();
            if version >= 5 {
                need(&buf, 28)?;
                queries_shed = buf.get_u64();
                queries_expired = buf.get_u64();
                conn_timeouts = buf.get_u64();
                let n = buf.get_u32() as usize;
                queue_depths.reserve(n.min(1024));
                for _ in 0..n {
                    let model = get_string(&mut buf)?;
                    need(&buf, 16)?;
                    queue_depths.push(ModelQueueDepth {
                        model,
                        depth: buf.get_u32(),
                        capacity: buf.get_u32(),
                        shed: buf.get_u64(),
                    });
                }
            }
            Frame::StatsReport {
                queries_served,
                batches,
                max_batch,
                pool_threads,
                stage_ops,
                queue_wait_nanos,
                eval_nanos,
                model_latencies,
                queries_shed,
                queries_expired,
                conn_timeouts,
                queue_depths,
            }
        }
        TAG_ERROR => {
            let message = get_string(&mut buf)?;
            let detail = if version >= 4 {
                need(&buf, 1)?;
                match buf.get_u8() {
                    0 => None,
                    1 => {
                        let model = get_string(&mut buf)?;
                        need(&buf, 17)?;
                        let code = RejectionCode::from_byte(buf.get_u8())?;
                        Some(RejectionDetail {
                            model,
                            code,
                            required: buf.get_u64(),
                            available: buf.get_u64(),
                        })
                    }
                    other => return Err(WireError::BadDetailFlag(other)),
                }
            } else {
                None
            };
            Frame::Error { message, detail }
        }
        TAG_BYE => Frame::Bye,
        // Busy entered the vocabulary at version 5: a lower version
        // byte claiming the tag is framing corruption, not a frame.
        TAG_BUSY if version >= 5 => {
            need(&buf, 8)?;
            let id = buf.get_u64();
            let model = get_string(&mut buf)?;
            need(&buf, 8)?;
            let queue_depth = buf.get_u32();
            let retry_after_ms = buf.get_u32();
            if retry_after_ms > MAX_RETRY_AFTER_MS {
                return Err(WireError::FieldOutOfRange {
                    field: "retry_after_ms",
                    value: u64::from(retry_after_ms),
                });
            }
            Frame::Busy {
                id,
                detail: ShedDetail {
                    model,
                    queue_depth,
                    retry_after_ms,
                },
            }
        }
        other => return Err(WireError::BadTag(other)),
    };
    if buf.remaining() > 0 {
        return Err(WireError::TrailingBytes {
            extra: buf.remaining(),
        });
    }
    Ok((frame, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::CompileOptions;
    use crate::runtime::Maurice;
    use copse_forest::model::Forest;

    fn sample_info() -> QueryInfo {
        let forest = Forest::parse(
            "labels no maybe yes\n\
             tree (branch 0 9 (branch 1 4 (leaf 0) (leaf 1)) (leaf 2))\n",
        )
        .unwrap();
        Maurice::compile(&forest, CompileOptions::default())
            .unwrap()
            .public_query_info()
    }

    #[test]
    fn roundtrip() {
        let info = sample_info();
        let decoded = decode_query_info(encode_query_info(&info)).unwrap();
        assert_eq!(decoded, info);
    }

    #[test]
    fn roundtrip_with_unicode_labels() {
        let mut info = sample_info();
        info.label_names = vec!["否".into(), "peut-être".into(), "да".into()];
        let decoded = decode_query_info(encode_query_info(&info)).unwrap();
        assert_eq!(decoded.label_names, info.label_names);
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let encoded = encode_query_info(&sample_info());
        for cut in 0..encoded.len() {
            let err = decode_query_info(encoded.slice(0..cut)).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn version_and_tag_checked() {
        let encoded = encode_query_info(&sample_info());
        let mut bad = encoded.to_vec();
        bad[0] = 9;
        assert_eq!(
            decode_query_info(Bytes::from(bad.clone())).unwrap_err(),
            WireError::BadVersion(9)
        );
        bad[0] = WIRE_VERSION;
        bad[1] = 0x00;
        assert_eq!(
            decode_query_info(Bytes::from(bad)).unwrap_err(),
            WireError::BadTag(0)
        );
    }

    #[test]
    fn codebook_validation() {
        let mut info = sample_info();
        info.codebook[0] = 99; // out of range for 3 labels
        let err = decode_query_info(encode_query_info(&info)).unwrap_err();
        assert_eq!(
            err,
            WireError::BadCodebook {
                index: 99,
                labels: 3
            }
        );
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::ClientHello {
                model: "income5".into(),
            },
            Frame::ServerHello {
                session: 0xDEAD_BEEF_0042,
                encrypted_model: true,
                info: sample_info(),
            },
            Frame::ListModels,
            Frame::ModelList {
                models: vec!["income5".into(), "soccer15".into(), "µ-bench".into()],
            },
            Frame::Query {
                id: 7,
                deadline_ms: 2_500,
                planes: vec![
                    Bytes::from(vec![0xC1, 0, 1, 2]),
                    Bytes::from(vec![0xC1]),
                    Bytes::new(),
                ],
            },
            Frame::Result {
                id: 7,
                batch_size: 3,
                ciphertext: Bytes::from(vec![9u8; 33]),
            },
            Frame::Stats,
            Frame::StatsReport {
                queries_served: 1_000_003,
                batches: 250_001,
                max_batch: 8,
                pool_threads: 16,
                stage_ops: [10, 20, 30, 40],
                queue_wait_nanos: 5_500_000,
                eval_nanos: 77_000_000,
                model_latencies: vec![
                    ModelLatency {
                        model: "income5".into(),
                        queries: 640_000,
                        p50_nanos: 1 << 20,
                        p90_nanos: 1 << 21,
                        p99_nanos: 1 << 22,
                        max_nanos: 5_123_456,
                    },
                    ModelLatency {
                        model: "µ-bench".into(),
                        queries: 3,
                        p50_nanos: 999,
                        p90_nanos: 999,
                        p99_nanos: 999,
                        max_nanos: 999,
                    },
                ],
                queries_shed: 4_200,
                queries_expired: 17,
                conn_timeouts: 3,
                queue_depths: vec![ModelQueueDepth {
                    model: "income5".into(),
                    depth: 12,
                    capacity: 64,
                    shed: 4_200,
                }],
            },
            Frame::Busy {
                id: 99,
                detail: ShedDetail {
                    model: "income5".into(),
                    queue_depth: 64,
                    retry_after_ms: 250,
                },
            },
            Frame::Error {
                message: "model `chess` rejected at deploy time".into(),
                detail: Some(RejectionDetail {
                    model: "chess".into(),
                    code: RejectionCode::DepthExceeded,
                    required: 19,
                    available: 14,
                }),
            },
            Frame::Bye,
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        for frame in sample_frames() {
            let decoded = decode_frame(encode_frame(&frame)).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn frame_tags_are_distinct() {
        let frames = sample_frames();
        let mut tags: Vec<u8> = frames.iter().map(Frame::tag).collect();
        tags.push(TAG_QUERY_INFO);
        tags.sort_unstable();
        let n = tags.len();
        tags.dedup();
        assert_eq!(tags.len(), n, "duplicate frame tag");
    }

    /// Oldest version a frame can be encoded at ([`Frame::Busy`]
    /// entered the vocabulary at 5; everything else downgrades).
    fn min_encodable_version(frame: &Frame) -> u8 {
        match frame {
            Frame::Busy { .. } => 5,
            _ => WIRE_VERSION_MIN,
        }
    }

    #[test]
    fn frame_truncation_detected_at_every_length() {
        for frame in sample_frames() {
            for version in [min_encodable_version(&frame), WIRE_VERSION] {
                let encoded = encode_frame_versioned(&frame, version);
                for cut in 0..encoded.len() {
                    let err = decode_frame(encoded.slice(0..cut)).unwrap_err();
                    assert_eq!(
                        err,
                        WireError::Truncated,
                        "{frame:?} v{version} cut at {cut}"
                    );
                }
            }
        }
    }

    #[test]
    fn busy_tag_on_a_pre_v5_session_is_a_bad_tag() {
        // A v4 (or older) session never negotiated the overload
        // vocabulary, so a Busy tag arriving with an old version byte
        // is hostile input, not a frame.
        let frame = Frame::Busy {
            id: 7,
            detail: ShedDetail {
                model: "income5".into(),
                queue_depth: 8,
                retry_after_ms: 100,
            },
        };
        let mut bytes = encode_frame(&frame).to_vec();
        for version in WIRE_VERSION_MIN..WIRE_VERSION {
            bytes[0] = version;
            assert_eq!(
                decode_frame(Bytes::from(bytes.clone())).unwrap_err(),
                WireError::BadTag(TAG_BUSY),
                "v{version}"
            );
        }
    }

    #[test]
    fn oversized_retry_after_ms_is_rejected_not_trusted() {
        // The encoder clamps; a hand-crafted frame past the cap is
        // rejected so a hostile server cannot park clients forever.
        let frame = Frame::Busy {
            id: 7,
            detail: ShedDetail {
                model: "m".into(),
                queue_depth: 8,
                retry_after_ms: 100,
            },
        };
        let mut bytes = encode_frame(&frame).to_vec();
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&(MAX_RETRY_AFTER_MS + 1).to_be_bytes());
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::FieldOutOfRange {
                field: "retry_after_ms",
                value: u64::from(MAX_RETRY_AFTER_MS) + 1,
            }
        );
    }

    #[test]
    fn encoder_clamps_retry_after_ms_to_the_wire_cap() {
        let frame = Frame::Busy {
            id: 7,
            detail: ShedDetail {
                model: "m".into(),
                queue_depth: 8,
                retry_after_ms: u32::MAX,
            },
        };
        let (decoded, _) = decode_frame_with_version(encode_frame(&frame)).unwrap();
        match decoded {
            Frame::Busy { detail, .. } => assert_eq!(detail.retry_after_ms, MAX_RETRY_AFTER_MS),
            other => panic!("expected Busy, got {other:?}"),
        }
    }

    #[test]
    fn oversized_query_deadline_is_rejected() {
        // deadline_ms sits right after the 8-byte query id at v5.
        let frame = Frame::Query {
            id: 3,
            deadline_ms: 0,
            planes: vec![Bytes::copy_from_slice(b"p")],
        };
        let mut bytes = encode_frame(&frame).to_vec();
        bytes[10..14].copy_from_slice(&(MAX_DEADLINE_MS + 1).to_be_bytes());
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::FieldOutOfRange {
                field: "deadline_ms",
                value: u64::from(MAX_DEADLINE_MS) + 1,
            }
        );
    }

    #[test]
    fn v2_sessions_still_roundtrip_every_frame() {
        // A version-2 encoding of any frame decodes, and the decoder
        // reports the version so the server can answer in kind. The
        // stats report comes back with the v3 latency extension
        // zeroed/empty and the v5 overload counters zeroed, the error
        // frame with the v4 rejection detail dropped, and the query
        // with its v5 deadline dropped; every other frame is
        // identical. Busy has no pre-5 encoding (servers answer such
        // sessions with Error) and is skipped here.
        for frame in sample_frames() {
            if min_encodable_version(&frame) > 2 {
                continue;
            }
            let encoded = encode_frame_versioned(&frame, 2);
            assert_eq!(encoded[0], 2, "old clients check this byte first");
            let (decoded, version) = decode_frame_with_version(encoded).unwrap();
            assert_eq!(version, 2);
            match (&frame, &decoded) {
                (
                    Frame::Error { message, .. },
                    Frame::Error {
                        message: m2,
                        detail,
                    },
                ) => {
                    assert_eq!(message, m2);
                    assert!(detail.is_none(), "v2 drops the structured detail");
                }
                (
                    Frame::Query { id, planes, .. },
                    Frame::Query {
                        id: i2,
                        deadline_ms,
                        planes: p2,
                    },
                ) => {
                    assert_eq!((id, planes), (i2, p2));
                    assert_eq!(*deadline_ms, 0, "v2 drops the deadline budget");
                }
                (
                    Frame::StatsReport {
                        queries_served,
                        batches,
                        max_batch,
                        pool_threads,
                        stage_ops,
                        ..
                    },
                    Frame::StatsReport {
                        queries_served: q2,
                        batches: b2,
                        max_batch: m2,
                        pool_threads: t2,
                        stage_ops: s2,
                        queue_wait_nanos,
                        eval_nanos,
                        model_latencies,
                        queries_shed,
                        queries_expired,
                        conn_timeouts,
                        queue_depths,
                    },
                ) => {
                    assert_eq!((queries_served, batches, max_batch), (q2, b2, m2));
                    assert_eq!((pool_threads, stage_ops), (t2, s2));
                    assert_eq!(*queue_wait_nanos, 0);
                    assert_eq!(*eval_nanos, 0);
                    assert!(model_latencies.is_empty());
                    assert_eq!((*queries_shed, *queries_expired, *conn_timeouts), (0, 0, 0));
                    assert!(queue_depths.is_empty());
                }
                _ => assert_eq!(decoded, frame),
            }
        }
    }

    #[test]
    fn v2_stats_report_body_is_byte_identical_to_the_old_format() {
        // The legacy body layout old clients parse: 8+8+4+4+4*8 = 56
        // bytes after the two header bytes, nothing more.
        let frame = sample_frames()
            .into_iter()
            .find(|f| matches!(f, Frame::StatsReport { .. }))
            .unwrap();
        let encoded = encode_frame_versioned(&frame, 2);
        assert_eq!(encoded.len(), 2 + 56);
    }

    #[test]
    fn current_frames_decode_as_the_current_version() {
        for frame in sample_frames() {
            let (decoded, version) = decode_frame_with_version(encode_frame(&frame)).unwrap();
            assert_eq!(version, WIRE_VERSION);
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn v3_and_v4_sessions_drop_only_the_fields_their_version_lacks() {
        // v3 keeps the latency stats but drops the v4 error detail and
        // everything v5 added; v4 additionally keeps the error detail.
        // Busy cannot be encoded below v5 and is skipped.
        for version in [3u8, 4] {
            for frame in sample_frames() {
                if min_encodable_version(&frame) > version {
                    continue;
                }
                let encoded = encode_frame_versioned(&frame, version);
                let (decoded, seen) = decode_frame_with_version(encoded).unwrap();
                assert_eq!(seen, version);
                match (&frame, &decoded) {
                    (
                        Frame::Error { message, detail },
                        Frame::Error {
                            message: m2,
                            detail: d2,
                        },
                    ) => {
                        assert_eq!(message, m2);
                        if version >= 4 {
                            assert_eq!(detail, d2);
                        } else {
                            assert!(d2.is_none(), "v3 drops the structured detail");
                        }
                    }
                    (
                        Frame::Query { id, planes, .. },
                        Frame::Query {
                            id: i2,
                            deadline_ms,
                            planes: p2,
                        },
                    ) => {
                        assert_eq!((id, planes), (i2, p2));
                        assert_eq!(*deadline_ms, 0, "v{version} drops the deadline budget");
                    }
                    (
                        Frame::StatsReport { .. },
                        Frame::StatsReport {
                            queries_shed,
                            queries_expired,
                            conn_timeouts,
                            queue_depths,
                            ..
                        },
                    ) => {
                        assert_eq!((*queries_shed, *queries_expired, *conn_timeouts), (0, 0, 0));
                        assert!(queue_depths.is_empty());
                        // Everything below the v5 block survives.
                        let mut v5_free = frame.clone();
                        if let Frame::StatsReport {
                            queries_shed,
                            queries_expired,
                            conn_timeouts,
                            queue_depths,
                            ..
                        } = &mut v5_free
                        {
                            *queries_shed = 0;
                            *queries_expired = 0;
                            *conn_timeouts = 0;
                            queue_depths.clear();
                        }
                        assert_eq!(decoded, v5_free);
                    }
                    _ => assert_eq!(decoded, frame),
                }
            }
        }
    }

    #[test]
    fn error_without_detail_roundtrips_at_every_version() {
        let frame = Frame::Error {
            message: "unknown model `chess`".into(),
            detail: None,
        };
        for version in WIRE_VERSION_MIN..=WIRE_VERSION {
            let (decoded, seen) =
                decode_frame_with_version(encode_frame_versioned(&frame, version)).unwrap();
            assert_eq!(seen, version);
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn rejection_code_bytes_are_stable_and_checked() {
        for code in [
            RejectionCode::DepthExceeded,
            RejectionCode::SlotRotationUnsupported,
            RejectionCode::SlotCapacityExceeded,
        ] {
            assert_eq!(RejectionCode::from_byte(code.to_byte()).unwrap(), code);
        }
        assert_eq!(
            RejectionCode::from_byte(0).unwrap_err(),
            WireError::BadRejectionCode(0)
        );
        // A corrupted detail flag is rejected, not guessed at.
        let mut bytes = encode_frame(&Frame::Error {
            message: "m".into(),
            detail: None,
        })
        .to_vec();
        let flag_at = bytes.len() - 1;
        bytes[flag_at] = 7;
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::BadDetailFlag(7)
        );
    }

    #[test]
    #[should_panic(expected = "cannot encode wire version")]
    fn encoding_an_unknown_version_is_refused() {
        let _ = encode_frame_versioned(&Frame::Bye, 1);
    }

    #[test]
    fn frame_version_and_tag_checked() {
        for frame in sample_frames() {
            let encoded = encode_frame(&frame).to_vec();
            let mut bad_version = encoded.clone();
            bad_version[0] = 0xEE;
            assert_eq!(
                decode_frame(Bytes::from(bad_version)).unwrap_err(),
                WireError::BadVersion(0xEE)
            );
        }
        let mut bad_tag = encode_frame(&Frame::Bye).to_vec();
        bad_tag[1] = 0x7F;
        assert_eq!(
            decode_frame(Bytes::from(bad_tag)).unwrap_err(),
            WireError::BadTag(0x7F)
        );
    }

    #[test]
    fn frame_trailing_bytes_rejected() {
        for frame in sample_frames() {
            let mut bad = encode_frame(&frame).to_vec();
            bad.extend_from_slice(&[0xAB, 0xCD]);
            assert_eq!(
                decode_frame(Bytes::from(bad)).unwrap_err(),
                WireError::TrailingBytes { extra: 2 },
                "{frame:?}"
            );
        }
    }

    #[test]
    fn server_hello_validates_codebook_like_query_info() {
        let mut info = sample_info();
        info.codebook[0] = 77;
        let err = decode_frame(encode_frame(&Frame::ServerHello {
            session: 1,
            encrypted_model: false,
            info,
        }))
        .unwrap_err();
        assert_eq!(
            err,
            WireError::BadCodebook {
                index: 77,
                labels: 3
            }
        );
    }

    #[test]
    fn non_utf8_strings_rejected() {
        let mut bad = encode_frame(&Frame::ClientHello { model: "ab".into() }).to_vec();
        let n = bad.len();
        bad[n - 1] = 0xFF;
        bad[n - 2] = 0xFE;
        assert_eq!(
            decode_frame(Bytes::from(bad)).unwrap_err(),
            WireError::BadString
        );
    }

    #[test]
    fn handshake_reveals_only_public_data() {
        // The message must carry exactly the fields of the paper's
        // step-0 handshake: K, feature count, precision, result width
        // and codebook - nothing about thresholds or structure.
        let info = sample_info();
        let encoded = encode_query_info(&info);
        // 2 (header) + 5*4 + labels + 4 + codebook
        let label_bytes: usize = info.label_names.iter().map(|n| 2 + n.len()).sum();
        assert_eq!(
            encoded.len(),
            2 + 20 + label_bytes + 4 + 4 * info.codebook.len()
        );
    }
}
