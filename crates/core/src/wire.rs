//! Wire encoding for the protocol's *public* messages.
//!
//! The COPSE workflow (paper Fig. 2) starts with a handshake: Maurice
//! reveals the maximum feature multiplicity `K` (via Sally) together
//! with whatever the configuration's leakage profile allows — feature
//! count, precision, result width and the codebook — so Diane can pad,
//! encrypt and later decode. This module gives that handshake a
//! concrete byte format (length-prefixed, big-endian, versioned) so
//! parties can live in separate processes.
//!
//! Ciphertext transport is deliberately out of scope: ciphertext
//! formats are backend-specific, and the paper's evaluation runs all
//! parties in one process. Only the public metadata crosses this wire.

use crate::runtime::QueryInfo;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Format version tag.
const WIRE_VERSION: u8 = 1;
/// Message tag for [`QueryInfo`].
const TAG_QUERY_INFO: u8 = 0x51;

/// Errors from [`decode_query_info`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unexpected message tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
    /// A codebook entry referenced a label out of range.
    BadCodebook {
        /// Offending label index.
        index: usize,
        /// Number of labels.
        labels: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unexpected message tag {t:#x}"),
            WireError::BadString => write!(f, "invalid UTF-8 in string field"),
            WireError::BadCodebook { index, labels } => {
                write!(f, "codebook entry {index} out of range for {labels} labels")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Serialises the public query information Maurice reveals to Diane.
pub fn encode_query_info(info: &QueryInfo) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + 16 * info.label_names.len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(TAG_QUERY_INFO);
    buf.put_u32(info.max_multiplicity as u32);
    buf.put_u32(info.feature_count as u32);
    buf.put_u32(info.precision);
    buf.put_u32(info.n_leaves as u32);
    buf.put_u32(info.label_names.len() as u32);
    for name in &info.label_names {
        let bytes = name.as_bytes();
        buf.put_u16(bytes.len() as u16);
        buf.put_slice(bytes);
    }
    buf.put_u32(info.codebook.len() as u32);
    for &label in &info.codebook {
        buf.put_u32(label as u32);
    }
    buf.freeze()
}

/// Parses a [`QueryInfo`] message.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, version/tag mismatch,
/// invalid UTF-8, or codebook entries outside the label alphabet.
pub fn decode_query_info(mut buf: Bytes) -> Result<QueryInfo, WireError> {
    fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    }

    need(&buf, 2)?;
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let tag = buf.get_u8();
    if tag != TAG_QUERY_INFO {
        return Err(WireError::BadTag(tag));
    }
    need(&buf, 20)?;
    let max_multiplicity = buf.get_u32() as usize;
    let feature_count = buf.get_u32() as usize;
    let precision = buf.get_u32();
    let n_leaves = buf.get_u32() as usize;
    let n_labels = buf.get_u32() as usize;

    let mut label_names = Vec::with_capacity(n_labels.min(1024));
    for _ in 0..n_labels {
        need(&buf, 2)?;
        let len = buf.get_u16() as usize;
        need(&buf, len)?;
        let raw = buf.copy_to_bytes(len);
        let name = String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadString)?;
        label_names.push(name);
    }

    need(&buf, 4)?;
    let n_codebook = buf.get_u32() as usize;
    let mut codebook = Vec::with_capacity(n_codebook.min(1 << 20));
    for _ in 0..n_codebook {
        need(&buf, 4)?;
        let label = buf.get_u32() as usize;
        if label >= label_names.len() {
            return Err(WireError::BadCodebook {
                index: label,
                labels: label_names.len(),
            });
        }
        codebook.push(label);
    }

    Ok(QueryInfo {
        max_multiplicity,
        feature_count,
        precision,
        n_leaves,
        label_names,
        codebook,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::CompileOptions;
    use crate::runtime::Maurice;
    use copse_forest::model::Forest;

    fn sample_info() -> QueryInfo {
        let forest = Forest::parse(
            "labels no maybe yes\n\
             tree (branch 0 9 (branch 1 4 (leaf 0) (leaf 1)) (leaf 2))\n",
        )
        .unwrap();
        Maurice::compile(&forest, CompileOptions::default())
            .unwrap()
            .public_query_info()
    }

    #[test]
    fn roundtrip() {
        let info = sample_info();
        let decoded = decode_query_info(encode_query_info(&info)).unwrap();
        assert_eq!(decoded, info);
    }

    #[test]
    fn roundtrip_with_unicode_labels() {
        let mut info = sample_info();
        info.label_names = vec!["否".into(), "peut-être".into(), "да".into()];
        let decoded = decode_query_info(encode_query_info(&info)).unwrap();
        assert_eq!(decoded.label_names, info.label_names);
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let encoded = encode_query_info(&sample_info());
        for cut in 0..encoded.len() {
            let err = decode_query_info(encoded.slice(0..cut)).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn version_and_tag_checked() {
        let encoded = encode_query_info(&sample_info());
        let mut bad = encoded.to_vec();
        bad[0] = 9;
        assert_eq!(
            decode_query_info(Bytes::from(bad.clone())).unwrap_err(),
            WireError::BadVersion(9)
        );
        bad[0] = WIRE_VERSION;
        bad[1] = 0x00;
        assert_eq!(
            decode_query_info(Bytes::from(bad)).unwrap_err(),
            WireError::BadTag(0)
        );
    }

    #[test]
    fn codebook_validation() {
        let mut info = sample_info();
        info.codebook[0] = 99; // out of range for 3 labels
        let err = decode_query_info(encode_query_info(&info)).unwrap_err();
        assert_eq!(
            err,
            WireError::BadCodebook {
                index: 99,
                labels: 3
            }
        );
    }

    #[test]
    fn handshake_reveals_only_public_data() {
        // The message must carry exactly the fields of the paper's
        // step-0 handshake: K, feature count, precision, result width
        // and codebook - nothing about thresholds or structure.
        let info = sample_info();
        let encoded = encode_query_info(&info);
        // 2 (header) + 5*4 + labels + 4 + codebook
        let label_bytes: usize = info.label_names.iter().map(|n| 2 + n.len()).sum();
        assert_eq!(
            encoded.len(),
            2 + 20 + label_bytes + 4 + 4 * info.codebook.len()
        );
    }
}
