//! Wire encoding for the protocol's messages.
//!
//! The COPSE workflow (paper Fig. 2) starts with a handshake: Maurice
//! reveals the maximum feature multiplicity `K` (via Sally) together
//! with whatever the configuration's leakage profile allows — feature
//! count, precision, result width and the codebook — so Diane can pad,
//! encrypt and later decode. This module gives that handshake a
//! concrete byte format (length-prefixed, big-endian, versioned) so
//! parties can live in separate processes.
//!
//! Beyond the standalone [`QueryInfo`] message, the module defines the
//! [`Frame`] vocabulary of the `copse-server` inference service:
//! session handshake ([`Frame::ClientHello`] / [`Frame::ServerHello`]),
//! model-registry discovery ([`Frame::ListModels`] /
//! [`Frame::ModelList`]), encrypted queries and results
//! ([`Frame::Query`] / [`Frame::Result`]), service statistics, errors,
//! and orderly shutdown. Ciphertext *contents* stay backend-specific —
//! frames carry the opaque byte strings produced by
//! `FheBackend::serialize_ciphertext` — but their framing is fixed
//! here, so clients and servers can live on opposite ends of a socket.
//! Every frame starts with the same version byte and a tag; decoding
//! rejects unknown versions and tags loudly.

use crate::runtime::QueryInfo;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Current format version. Version 2 widened [`Frame::StatsReport`]
/// with the server's pool-parallelism degree; version 3 extends it
/// again with the latency breakdown (queue-wait vs evaluation time
/// and per-model percentiles); version 4 extends [`Frame::Error`]
/// with an optional structured deploy-rejection detail
/// ([`RejectionDetail`]); version 5 adds the overload vocabulary —
/// the [`Frame::Busy`] load-shed answer ([`ShedDetail`]), the
/// [`Frame::Query`] deadline budget, and the shed/timeout counters
/// plus queue-depth gauges in [`Frame::StatsReport`]; version 6 adds
/// the tracing vocabulary — an optional client-assigned trace id on
/// [`Frame::Query`], an optional per-query [`ServerTiming`] record on
/// [`Frame::Result`] / [`Frame::Busy`] / [`Frame::Error`], and the
/// [`Frame::MetricsRequest`] / [`Frame::MetricsReport`] metrics pull.
/// Decoding accepts versions 2 through 6; [`encode_frame_versioned`]
/// can still emit older bytes so a server can keep serving old
/// clients at the version they spoke first.
pub const WIRE_VERSION: u8 = 6;
/// Oldest version this build still decodes and can re-encode.
pub const WIRE_VERSION_MIN: u8 = 2;
/// Message tag for [`QueryInfo`].
const TAG_QUERY_INFO: u8 = 0x51;
/// Session-opening request naming a model.
const TAG_CLIENT_HELLO: u8 = 0x01;
/// Session grant: id, model form, and the model's public query info.
const TAG_SERVER_HELLO: u8 = 0x02;
/// Registry listing request.
const TAG_LIST_MODELS: u8 = 0x03;
/// Registry listing response.
const TAG_MODEL_LIST: u8 = 0x04;
/// Encrypted inference query (serialized bit-plane ciphertexts).
const TAG_QUERY: u8 = 0x05;
/// Encrypted inference result (one serialized ciphertext).
const TAG_RESULT: u8 = 0x06;
/// Service statistics request.
const TAG_STATS: u8 = 0x07;
/// Service statistics response.
const TAG_STATS_REPORT: u8 = 0x08;
/// Server-side failure description.
const TAG_ERROR: u8 = 0x09;
/// Orderly session close.
const TAG_BYE: u8 = 0x0A;
/// Load-shed answer: the server refused a query it could not finish
/// (version 5; older sessions get a plain [`Frame::Error`] instead).
const TAG_BUSY: u8 = 0x0B;
/// Metrics-exposition pull request (version 6).
const TAG_METRICS_REQUEST: u8 = 0x0C;
/// Metrics-exposition response: Prometheus-style text (version 6).
const TAG_METRICS_REPORT: u8 = 0x0D;

/// Upper bound a decoder accepts for [`ShedDetail::retry_after_ms`].
/// A server asking a client to back off for more than ten minutes is
/// corrupt framing, not a serving hint; hostile values must not reach
/// retry arithmetic.
pub const MAX_RETRY_AFTER_MS: u32 = 600_000;
/// Upper bound a decoder accepts for [`Frame::Query`]'s `deadline_ms`
/// budget (one hour). A query that tolerates more waiting than this
/// is indistinguishable from one with no deadline at all.
pub const MAX_DEADLINE_MS: u32 = 3_600_000;
/// Upper bound a decoder accepts for the number of packed-batch peer
/// trace ids a [`ServerTiming`] record may list. No honest server
/// coalesces more queries than this into one pass; a larger count is
/// framing corruption aimed at the decoder's allocator.
pub const MAX_BATCH_PEERS: usize = 4096;

/// Errors from [`decode_query_info`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown version byte.
    BadVersion(u8),
    /// Unexpected message tag.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadString,
    /// A codebook entry referenced a label out of range.
    BadCodebook {
        /// Offending label index.
        index: usize,
        /// Number of labels.
        labels: usize,
    },
    /// Bytes remained after a complete frame body (framing
    /// corruption; only [`decode_frame`] checks this).
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// A presence flag (error detail v4, query trace id v6, server
    /// timing v6) was neither 0 nor 1.
    BadDetailFlag(u8),
    /// An unknown [`RejectionCode`] byte in an error detail (v4).
    BadRejectionCode(u8),
    /// An unknown [`TimingCause`] byte in a [`ServerTiming`] record
    /// (v6).
    BadTimingCause(u8),
    /// A bounded numeric field carried a value outside its documented
    /// range (v5: `retry_after_ms`, `deadline_ms`). Hostile or corrupt
    /// values are rejected at decode so they can never reach backoff
    /// or deadline arithmetic.
    FieldOutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unexpected message tag {t:#x}"),
            WireError::BadString => write!(f, "invalid UTF-8 in string field"),
            WireError::BadCodebook { index, labels } => {
                write!(f, "codebook entry {index} out of range for {labels} labels")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
            WireError::BadDetailFlag(b) => {
                write!(f, "presence flag must be 0 or 1, got {b}")
            }
            WireError::BadRejectionCode(b) => {
                write!(f, "unknown rejection code {b}")
            }
            WireError::BadTimingCause(b) => {
                write!(f, "unknown timing cause {b}")
            }
            WireError::FieldOutOfRange { field, value } => {
                write!(f, "field {field} value {value} outside its wire range")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    let bytes = s.as_bytes();
    assert!(bytes.len() <= u16::MAX as usize, "string field too long");
    buf.put_u16(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn get_string(buf: &mut Bytes) -> Result<String, WireError> {
    need(buf, 2)?;
    let len = buf.get_u16() as usize;
    need(buf, len)?;
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadString)
}

fn put_blob(buf: &mut BytesMut, blob: &[u8]) {
    assert!(
        u32::try_from(blob.len()).is_ok(),
        "blob field too long for a u32 length prefix"
    );
    buf.put_u32(blob.len() as u32);
    buf.put_slice(blob);
}

fn get_blob(buf: &mut Bytes) -> Result<Bytes, WireError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    need(buf, len)?;
    Ok(buf.copy_to_bytes(len))
}

fn put_query_info_body(buf: &mut BytesMut, info: &QueryInfo) {
    buf.put_u32(info.max_multiplicity as u32);
    buf.put_u32(info.feature_count as u32);
    buf.put_u32(info.precision);
    buf.put_u32(info.n_leaves as u32);
    buf.put_u32(info.label_names.len() as u32);
    for name in &info.label_names {
        put_string(buf, name);
    }
    buf.put_u32(info.codebook.len() as u32);
    for &label in &info.codebook {
        buf.put_u32(label as u32);
    }
}

fn get_query_info_body(buf: &mut Bytes) -> Result<QueryInfo, WireError> {
    need(buf, 20)?;
    let max_multiplicity = buf.get_u32() as usize;
    let feature_count = buf.get_u32() as usize;
    let precision = buf.get_u32();
    let n_leaves = buf.get_u32() as usize;
    let n_labels = buf.get_u32() as usize;

    let mut label_names = Vec::with_capacity(n_labels.min(1024));
    for _ in 0..n_labels {
        label_names.push(get_string(buf)?);
    }

    need(buf, 4)?;
    let n_codebook = buf.get_u32() as usize;
    let mut codebook = Vec::with_capacity(n_codebook.min(1 << 20));
    for _ in 0..n_codebook {
        need(buf, 4)?;
        let label = buf.get_u32() as usize;
        if label >= label_names.len() {
            return Err(WireError::BadCodebook {
                index: label,
                labels: label_names.len(),
            });
        }
        codebook.push(label);
    }

    Ok(QueryInfo {
        max_multiplicity,
        feature_count,
        precision,
        n_leaves,
        label_names,
        codebook,
    })
}

/// Serialises the public query information Maurice reveals to Diane.
pub fn encode_query_info(info: &QueryInfo) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + 16 * info.label_names.len());
    buf.put_u8(WIRE_VERSION);
    buf.put_u8(TAG_QUERY_INFO);
    put_query_info_body(&mut buf, info);
    buf.freeze()
}

/// Parses a [`QueryInfo`] message.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, version/tag mismatch,
/// invalid UTF-8, or codebook entries outside the label alphabet.
pub fn decode_query_info(mut buf: Bytes) -> Result<QueryInfo, WireError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let tag = buf.get_u8();
    if tag != TAG_QUERY_INFO {
        return Err(WireError::BadTag(tag));
    }
    get_query_info_body(&mut buf)
}

/// One message of the `copse-server` inference protocol.
///
/// A session is: `ClientHello` → `ServerHello`, then any number of
/// `Query` → `Result` (or `Error`) exchanges plus optional
/// `ListModels`/`Stats` requests, ended by `Bye`. Ciphertext fields
/// hold backend-serialized bytes (`FheBackend::serialize_ciphertext`);
/// the protocol never looks inside them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Opens a session against one registered model.
    ClientHello {
        /// Registry name of the model to query.
        model: String,
    },
    /// Grants a session: what Diane needs to form queries.
    ServerHello {
        /// Server-assigned session id.
        session: u64,
        /// `true` when the model is deployed encrypted.
        encrypted_model: bool,
        /// The model's public query information.
        info: QueryInfo,
    },
    /// Asks for the model registry's contents.
    ListModels,
    /// The model registry's contents.
    ModelList {
        /// Registered model names, in registration order.
        models: Vec<String>,
    },
    /// An encrypted query: the `p` serialized bit-plane ciphertexts.
    Query {
        /// Client-chosen id echoed in the matching [`Frame::Result`].
        id: u64,
        /// Client deadline budget in milliseconds, measured by the
        /// *server* from the moment it reads the frame (clocks are
        /// never compared across the wire — see docs/ROBUSTNESS.md).
        /// `0` means no deadline. Version-5 extension: older
        /// encodings omit it and decode as `0`. Values above
        /// [`MAX_DEADLINE_MS`] are rejected at decode.
        deadline_ms: u32,
        /// Client-assigned trace id: `Some` means "trace me" — the
        /// server tags its per-stage spans with this id and returns a
        /// [`ServerTiming`] record on the answer frame. Version-6
        /// extension: older encodings omit it and decode as `None`.
        /// A retried query re-sends the same id, so duplicate ids in
        /// the server's flight recorder *are* the client's retries.
        trace: Option<u64>,
        /// Serialized ciphertexts, MSB plane first.
        planes: Vec<Bytes>,
    },
    /// An encrypted classification result.
    Result {
        /// The id of the query this answers.
        id: u64,
        /// Number of queries coalesced into the evaluation pass that
        /// produced this result (≥ 1; > 1 means batching happened).
        batch_size: u32,
        /// The serialized N-hot result ciphertext.
        ciphertext: Bytes,
        /// Per-query server-side timing, present iff the query asked
        /// to be traced (version-6 extension; older encodings omit
        /// it).
        timing: Option<ServerTiming>,
    },
    /// Asks for service statistics.
    Stats,
    /// Service statistics (whole-server, all models).
    ///
    /// The latency fields (`queue_wait_nanos`, `eval_nanos`,
    /// `model_latencies`) are version-3 extensions: a version-2
    /// encoding omits them and a version-2 body decodes with them
    /// zeroed/empty.
    StatsReport {
        /// Inference queries answered so far.
        queries_served: u64,
        /// Evaluation passes run (each serves ≥ 1 query).
        batches: u64,
        /// Largest batch coalesced so far.
        max_batch: u32,
        /// Parallel degree the server evaluates with (workers of the
        /// shared `copse-pool` runtime a pass may fork onto; 1 =
        /// sequential).
        pool_threads: u32,
        /// Homomorphic op totals per pipeline stage:
        /// `[comparison, reshuffle, levels, accumulate]`.
        stage_ops: [u64; 4],
        /// Total nanoseconds queries spent waiting in the batching
        /// queue before an evaluation pass picked them up (v3).
        queue_wait_nanos: u64,
        /// Total nanoseconds spent inside evaluation passes,
        /// attributed per query (v3).
        eval_nanos: u64,
        /// Per-model end-to-end latency percentiles (v3).
        model_latencies: Vec<ModelLatency>,
        /// Queries refused with [`Frame::Busy`] because their model's
        /// bounded queue was full (v5).
        queries_shed: u64,
        /// Accepted queries shed at dequeue because their deadline
        /// budget expired in the queue — never evaluated (v5).
        queries_expired: u64,
        /// Connections closed by the server's read/write timeouts
        /// (slow-loris bound, v5).
        conn_timeouts: u64,
        /// Per-model live queue-depth gauges and shed counters (v5).
        queue_depths: Vec<ModelQueueDepth>,
    },
    /// A request failed; the session stays open.
    Error {
        /// Human-readable failure description.
        message: String,
        /// Structured deploy-rejection diagnostic, when the failure is
        /// a model the static analyzer refused to admit (version-4
        /// extension; older encodings carry only the message).
        detail: Option<RejectionDetail>,
        /// Per-query server-side timing for traced queries that ended
        /// in a typed error (expired deadline, failed evaluation) —
        /// the slow path is exactly the one worth tracing (version-6
        /// extension; older encodings omit it).
        timing: Option<ServerTiming>,
    },
    /// Orderly session close.
    Bye,
    /// The server refused a query it could not finish: the model's
    /// bounded queue was full when the query arrived. The query was
    /// **not** accepted — retrying after the hinted backoff is safe
    /// and the idiomatic client behaviour (see `RetryPolicy` in
    /// `copse-server`). Version-5 vocabulary: sessions speaking
    /// version 4 or older receive a plain [`Frame::Error`] carrying
    /// the same text instead.
    Busy {
        /// The id of the query being shed.
        id: u64,
        /// Structured overload diagnostic.
        detail: ShedDetail,
        /// Per-query server-side timing for traced queries that were
        /// shed after acceptance (version-6 extension; older
        /// encodings omit it; front-door sheds carry one too so a
        /// traced client can see how fast the refusal was).
        timing: Option<ServerTiming>,
    },
    /// Asks for the metrics exposition (version 6; older sessions use
    /// [`Frame::Stats`]).
    MetricsRequest,
    /// Every server counter, gauge, and latency histogram rendered in
    /// Prometheus-style text exposition format (version 6). The
    /// grammar is documented in `docs/OBSERVABILITY.md`; a
    /// self-contained parser lives in `copse-server::metrics`.
    MetricsReport {
        /// The exposition document (UTF-8; `# TYPE`/`# HELP` comment
        /// lines plus `name{labels} value` samples).
        text: String,
    },
}

/// Why a [`ServerTiming`] record's query ended the way it did (wire
/// version 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimingCause {
    /// Evaluated and answered with a [`Frame::Result`].
    Served,
    /// Refused or drained with a [`Frame::Busy`] (front-door queue
    /// full, or shutdown drain).
    Shed,
    /// The client's deadline budget expired in the queue; the query
    /// was never evaluated.
    Expired,
    /// Evaluation failed with a typed error.
    Failed,
}

impl TimingCause {
    /// Wire byte for this cause.
    pub fn to_byte(self) -> u8 {
        match self {
            TimingCause::Served => 0,
            TimingCause::Shed => 1,
            TimingCause::Expired => 2,
            TimingCause::Failed => 3,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// [`WireError::BadTimingCause`] for bytes this build does not
    /// know.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(TimingCause::Served),
            1 => Ok(TimingCause::Shed),
            2 => Ok(TimingCause::Expired),
            3 => Ok(TimingCause::Failed),
            other => Err(WireError::BadTimingCause(other)),
        }
    }
}

/// Compact per-query server-side timing record (wire version 6),
/// returned on the answer frame of a traced query.
///
/// All `*_nanos` fields are **relative** offsets from the moment the
/// server finished reading the `Query` frame (receive = 0) — client
/// and server clocks are never compared across the wire (the same
/// rule `deadline_ms` follows; see docs/OBSERVABILITY.md for how a
/// client anchors these offsets inside its own send/receive window).
/// Offsets are monotone along the pipeline:
/// `enqueue ≤ dequeue ≤ assembled ≤ encode`, and the four stage
/// durations happened between `assembled` and `encode`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerTiming {
    /// Id of the evaluator worker that handled (or shed) the query;
    /// 0 when the front door answered before any worker saw it.
    pub worker: u32,
    /// How the query's service ended.
    pub cause: TimingCause,
    /// Receive → job enqueued (validation + ciphertext
    /// deserialisation time).
    pub enqueue_nanos: u64,
    /// Receive → the worker dequeued the job (queue wait ends here).
    pub dequeue_nanos: u64,
    /// Receive → the coalesced batch closed and evaluation began.
    pub assembled_nanos: u64,
    /// Per-stage evaluation **durations** in pipeline order:
    /// `[comparison, reshuffle, levels, accumulate]`.
    pub stage_nanos: [u64; 4],
    /// Receive → the answer frame was being encoded (total
    /// server-side time for this query).
    pub encode_nanos: u64,
    /// Queries coalesced into the evaluation pass (≥ 1 when served;
    /// 0 when never evaluated).
    pub batch_size: u32,
    /// Trace ids of the *other* traced queries packed into the same
    /// pass (untraced peers have no id and appear only in
    /// `batch_size`). Decoders reject more than [`MAX_BATCH_PEERS`].
    pub batch_peers: Vec<u64>,
}

/// Why and for how long a [`Frame::Busy`] shed happened (wire
/// version 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShedDetail {
    /// Registry name of the overloaded model.
    pub model: String,
    /// Depth of the model's job queue at shed time (its configured
    /// bound — the queue was full).
    pub queue_depth: u32,
    /// Server's backoff hint in milliseconds: how long a retrying
    /// client should wait before its next attempt. Bounded by
    /// [`MAX_RETRY_AFTER_MS`]; decoders reject larger values.
    pub retry_after_ms: u32,
}

/// Why deploy-time admission refused a model (wire version 4).
///
/// Mirrors the verdicts of the `copse-analyze` static circuit
/// analysis: the compiled pipeline's requirements were checked against
/// the serving backend's capabilities before any ciphertext existed,
/// and one of these budgets or capabilities fell short.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectionCode {
    /// Predicted multiplicative depth exceeds the backend's
    /// `depth_budget()` — evaluation would exhaust the noise budget
    /// and decrypt garbage.
    DepthExceeded,
    /// The circuit needs slot rotations and the backend cannot rotate
    /// (the negacyclic-flavored packed backend has no slot structure).
    SlotRotationUnsupported,
    /// A pipeline operand is wider than the backend's slot capacity.
    SlotCapacityExceeded,
}

impl RejectionCode {
    /// Wire byte for this code.
    pub fn to_byte(self) -> u8 {
        match self {
            RejectionCode::DepthExceeded => 1,
            RejectionCode::SlotRotationUnsupported => 2,
            RejectionCode::SlotCapacityExceeded => 3,
        }
    }

    /// Parses a wire byte.
    ///
    /// # Errors
    ///
    /// [`WireError::BadRejectionCode`] for bytes this build does not
    /// know.
    pub fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(RejectionCode::DepthExceeded),
            2 => Ok(RejectionCode::SlotRotationUnsupported),
            3 => Ok(RejectionCode::SlotCapacityExceeded),
            other => Err(WireError::BadRejectionCode(other)),
        }
    }
}

/// Structured deploy-rejection diagnostic carried by [`Frame::Error`]
/// from wire version 4 on.
///
/// `required`/`available` quantify the failed check in the code's
/// units: multiplicative depth levels for
/// [`RejectionCode::DepthExceeded`], rotation count vs zero for
/// [`RejectionCode::SlotRotationUnsupported`], slot widths for
/// [`RejectionCode::SlotCapacityExceeded`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejectionDetail {
    /// Registry name of the refused model.
    pub model: String,
    /// Which admission check failed.
    pub code: RejectionCode,
    /// What the circuit statically requires.
    pub required: u64,
    /// What the backend provides.
    pub available: u64,
}

/// One model's end-to-end latency summary inside
/// [`Frame::StatsReport`] (wire version 3).
///
/// Percentiles come from the server's log-bucketed
/// `LatencyHistogram`, so each is the upper bound of the bucket the
/// rank falls in, capped at the exact maximum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelLatency {
    /// Registry name of the model.
    pub model: String,
    /// Queries this model has answered.
    pub queries: u64,
    /// Median end-to-end latency in nanoseconds.
    pub p50_nanos: u64,
    /// 90th-percentile latency in nanoseconds.
    pub p90_nanos: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_nanos: u64,
    /// Worst observed latency in nanoseconds (exact).
    pub max_nanos: u64,
}

/// One model's live queue gauge inside [`Frame::StatsReport`] (wire
/// version 5): how deep its bounded job queue currently is and how
/// many queries it has shed so far.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelQueueDepth {
    /// Registry name of the model.
    pub model: String,
    /// Jobs waiting in the model's bounded queue at snapshot time.
    pub depth: u32,
    /// Configured bound of that queue.
    pub capacity: u32,
    /// Queries this model has refused with [`Frame::Busy`].
    pub shed: u64,
}

impl Frame {
    /// The frame's wire tag (exposed for diagnostics).
    pub fn tag(&self) -> u8 {
        match self {
            Frame::ClientHello { .. } => TAG_CLIENT_HELLO,
            Frame::ServerHello { .. } => TAG_SERVER_HELLO,
            Frame::ListModels => TAG_LIST_MODELS,
            Frame::ModelList { .. } => TAG_MODEL_LIST,
            Frame::Query { .. } => TAG_QUERY,
            Frame::Result { .. } => TAG_RESULT,
            Frame::Stats => TAG_STATS,
            Frame::StatsReport { .. } => TAG_STATS_REPORT,
            Frame::Error { .. } => TAG_ERROR,
            Frame::Bye => TAG_BYE,
            Frame::Busy { .. } => TAG_BUSY,
            Frame::MetricsRequest => TAG_METRICS_REQUEST,
            Frame::MetricsReport { .. } => TAG_METRICS_REPORT,
        }
    }
}

/// Writes a [`ServerTiming`] body.
fn put_timing(buf: &mut BytesMut, t: &ServerTiming) {
    buf.put_u32(t.worker);
    buf.put_u8(t.cause.to_byte());
    buf.put_u64(t.enqueue_nanos);
    buf.put_u64(t.dequeue_nanos);
    buf.put_u64(t.assembled_nanos);
    for &nanos in &t.stage_nanos {
        buf.put_u64(nanos);
    }
    buf.put_u64(t.encode_nanos);
    buf.put_u32(t.batch_size);
    let peers = t.batch_peers.len().min(MAX_BATCH_PEERS);
    buf.put_u32(peers as u32);
    for &peer in &t.batch_peers[..peers] {
        buf.put_u64(peer);
    }
}

/// Reads a [`ServerTiming`] body.
fn get_timing(buf: &mut Bytes) -> Result<ServerTiming, WireError> {
    // Fixed prefix: worker(4) + cause(1) + 8 × u64 offsets/stages
    // + batch_size(4) + peer count(4).
    need(buf, 4 + 1 + 8 * 8 + 4 + 4)?;
    let worker = buf.get_u32();
    let cause = TimingCause::from_byte(buf.get_u8())?;
    let enqueue_nanos = buf.get_u64();
    let dequeue_nanos = buf.get_u64();
    let assembled_nanos = buf.get_u64();
    let mut stage_nanos = [0u64; 4];
    for slot in &mut stage_nanos {
        *slot = buf.get_u64();
    }
    let encode_nanos = buf.get_u64();
    let batch_size = buf.get_u32();
    let n_peers = buf.get_u32() as usize;
    if n_peers > MAX_BATCH_PEERS {
        return Err(WireError::FieldOutOfRange {
            field: "batch_peers",
            value: n_peers as u64,
        });
    }
    need(buf, 8 * n_peers)?;
    let mut batch_peers = Vec::with_capacity(n_peers);
    for _ in 0..n_peers {
        batch_peers.push(buf.get_u64());
    }
    Ok(ServerTiming {
        worker,
        cause,
        enqueue_nanos,
        dequeue_nanos,
        assembled_nanos,
        stage_nanos,
        encode_nanos,
        batch_size,
        batch_peers,
    })
}

/// Writes an optional [`ServerTiming`] behind a 0/1 presence flag.
fn put_opt_timing(buf: &mut BytesMut, timing: &Option<ServerTiming>) {
    match timing {
        None => buf.put_u8(0),
        Some(t) => {
            buf.put_u8(1);
            put_timing(buf, t);
        }
    }
}

/// Reads an optional [`ServerTiming`] behind a 0/1 presence flag.
fn get_opt_timing(buf: &mut Bytes) -> Result<Option<ServerTiming>, WireError> {
    need(buf, 1)?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_timing(buf)?)),
        other => Err(WireError::BadDetailFlag(other)),
    }
}

/// Serialises one protocol frame (version byte, tag, body) at the
/// current [`WIRE_VERSION`].
pub fn encode_frame(frame: &Frame) -> Bytes {
    encode_frame_versioned(frame, WIRE_VERSION)
}

/// Serialises one protocol frame at an explicit wire version, for
/// sessions negotiated with an older client: an old peer rejects
/// *any* frame carrying a newer version byte, so a server answering
/// such a session must encode every response — not just stats — at
/// the session's version. Two frames have version-dependent bodies:
/// [`Frame::StatsReport`] (version 2 drops the latency extension,
/// versions below 5 drop the overload counters), [`Frame::Error`]
/// (versions below 4 drop the structured rejection detail, versions
/// below 6 the timing record), [`Frame::Query`] (versions below 5
/// drop the deadline budget, versions below 6 the trace id), and
/// [`Frame::Result`] / [`Frame::Busy`] (versions below 6 drop the
/// timing record).
///
/// # Panics
///
/// Panics if `version` is outside
/// [`WIRE_VERSION_MIN`]`..=`[`WIRE_VERSION`], when asked to encode
/// [`Frame::Busy`] below version 5 — that frame does not exist in the
/// older vocabularies, and a server answering an old session must
/// send a plain [`Frame::Error`] instead (which `copse-server` does)
/// — or when asked to encode [`Frame::MetricsRequest`] /
/// [`Frame::MetricsReport`] below version 6 (pre-6 sessions have no
/// metrics pull; they use [`Frame::Stats`]).
pub fn encode_frame_versioned(frame: &Frame, version: u8) -> Bytes {
    assert!(
        (WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version),
        "cannot encode wire version {version}"
    );
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u8(version);
    buf.put_u8(frame.tag());
    match frame {
        Frame::ClientHello { model } => put_string(&mut buf, model),
        Frame::ServerHello {
            session,
            encrypted_model,
            info,
        } => {
            buf.put_u64(*session);
            buf.put_u8(u8::from(*encrypted_model));
            put_query_info_body(&mut buf, info);
        }
        Frame::ListModels | Frame::Stats | Frame::Bye => {}
        Frame::ModelList { models } => {
            buf.put_u32(models.len() as u32);
            for name in models {
                put_string(&mut buf, name);
            }
        }
        Frame::Query {
            id,
            deadline_ms,
            trace,
            planes,
        } => {
            buf.put_u64(*id);
            // The deadline budget exists only from version 5 on; an
            // older body goes straight from the id to the plane count
            // (the deadline is silently dropped — an old server would
            // not have honoured it anyway).
            if version >= 5 {
                buf.put_u32(*deadline_ms);
            }
            // The trace id exists only from version 6 on; an older
            // encoding silently drops it (an old server could not
            // answer with timing anyway).
            if version >= 6 {
                match trace {
                    None => buf.put_u8(0),
                    Some(trace_id) => {
                        buf.put_u8(1);
                        buf.put_u64(*trace_id);
                    }
                }
            }
            buf.put_u32(planes.len() as u32);
            for plane in planes {
                put_blob(&mut buf, plane);
            }
        }
        Frame::Result {
            id,
            batch_size,
            ciphertext,
            timing,
        } => {
            buf.put_u64(*id);
            buf.put_u32(*batch_size);
            put_blob(&mut buf, ciphertext);
            // The timing record exists only from version 6 on; a
            // pre-6 body ends with the ciphertext, byte-identical to
            // what old peers always parsed.
            if version >= 6 {
                put_opt_timing(&mut buf, timing);
            }
        }
        Frame::StatsReport {
            queries_served,
            batches,
            max_batch,
            pool_threads,
            stage_ops,
            queue_wait_nanos,
            eval_nanos,
            model_latencies,
            queries_shed,
            queries_expired,
            conn_timeouts,
            queue_depths,
        } => {
            buf.put_u64(*queries_served);
            buf.put_u64(*batches);
            buf.put_u32(*max_batch);
            buf.put_u32(*pool_threads);
            for &ops in stage_ops {
                buf.put_u64(ops);
            }
            // The latency extension exists only from version 3 on; a
            // version-2 body ends with the stage ops.
            if version >= 3 {
                buf.put_u64(*queue_wait_nanos);
                buf.put_u64(*eval_nanos);
                buf.put_u32(model_latencies.len() as u32);
                for lat in model_latencies {
                    put_string(&mut buf, &lat.model);
                    buf.put_u64(lat.queries);
                    buf.put_u64(lat.p50_nanos);
                    buf.put_u64(lat.p90_nanos);
                    buf.put_u64(lat.p99_nanos);
                    buf.put_u64(lat.max_nanos);
                }
            }
            // The overload counters exist only from version 5 on.
            if version >= 5 {
                buf.put_u64(*queries_shed);
                buf.put_u64(*queries_expired);
                buf.put_u64(*conn_timeouts);
                buf.put_u32(queue_depths.len() as u32);
                for q in queue_depths {
                    put_string(&mut buf, &q.model);
                    buf.put_u32(q.depth);
                    buf.put_u32(q.capacity);
                    buf.put_u64(q.shed);
                }
            }
        }
        Frame::Error {
            message,
            detail,
            timing,
        } => {
            put_string(&mut buf, message);
            // The structured detail exists only from version 4 on; an
            // older body is just the message, byte-identical to what
            // old peers always parsed.
            if version >= 4 {
                match detail {
                    None => buf.put_u8(0),
                    Some(d) => {
                        buf.put_u8(1);
                        put_string(&mut buf, &d.model);
                        buf.put_u8(d.code.to_byte());
                        buf.put_u64(d.required);
                        buf.put_u64(d.available);
                    }
                }
            }
            if version >= 6 {
                put_opt_timing(&mut buf, timing);
            }
        }
        Frame::Busy { id, detail, timing } => {
            assert!(
                version >= 5,
                "Busy has no encoding below wire version 5; \
                 answer old sessions with Frame::Error instead"
            );
            buf.put_u64(*id);
            put_string(&mut buf, &detail.model);
            buf.put_u32(detail.queue_depth);
            buf.put_u32(detail.retry_after_ms.min(MAX_RETRY_AFTER_MS));
            // A v5 Busy body ends with the backoff hint; the timing
            // record exists only from version 6 on.
            if version >= 6 {
                put_opt_timing(&mut buf, timing);
            }
        }
        Frame::MetricsRequest => {
            assert!(
                version >= 6,
                "the metrics pull has no encoding below wire version 6; \
                 old sessions use Frame::Stats instead"
            );
        }
        Frame::MetricsReport { text } => {
            assert!(
                version >= 6,
                "the metrics pull has no encoding below wire version 6; \
                 old sessions use Frame::Stats instead"
            );
            // A u32 length prefix (not the u16 string prefix): a full
            // exposition document easily outgrows 64 KiB.
            put_blob(&mut buf, text.as_bytes());
        }
    }
    buf.freeze()
}

/// Parses one protocol frame.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, an unknown version byte, an
/// unknown tag, invalid UTF-8, or out-of-range codebook entries.
pub fn decode_frame(buf: Bytes) -> Result<Frame, WireError> {
    decode_frame_with_version(buf).map(|(frame, _)| frame)
}

/// Parses one protocol frame, also reporting the wire version it was
/// encoded at — the server uses this to remember which version a
/// session's client speaks and answer in kind.
///
/// # Errors
///
/// Same as [`decode_frame`].
pub fn decode_frame_with_version(mut buf: Bytes) -> Result<(Frame, u8), WireError> {
    need(&buf, 2)?;
    let version = buf.get_u8();
    if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
        return Err(WireError::BadVersion(version));
    }
    let tag = buf.get_u8();
    let frame = match tag {
        TAG_CLIENT_HELLO => Frame::ClientHello {
            model: get_string(&mut buf)?,
        },
        TAG_SERVER_HELLO => {
            need(&buf, 9)?;
            let session = buf.get_u64();
            let encrypted_model = buf.get_u8() != 0;
            Frame::ServerHello {
                session,
                encrypted_model,
                info: get_query_info_body(&mut buf)?,
            }
        }
        TAG_LIST_MODELS => Frame::ListModels,
        TAG_MODEL_LIST => {
            need(&buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut models = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                models.push(get_string(&mut buf)?);
            }
            Frame::ModelList { models }
        }
        TAG_QUERY => {
            need(&buf, 12)?;
            let id = buf.get_u64();
            let deadline_ms = if version >= 5 {
                let ms = buf.get_u32();
                if ms > MAX_DEADLINE_MS {
                    return Err(WireError::FieldOutOfRange {
                        field: "deadline_ms",
                        value: u64::from(ms),
                    });
                }
                ms
            } else {
                0
            };
            let trace = if version >= 6 {
                need(&buf, 1)?;
                match buf.get_u8() {
                    0 => None,
                    1 => {
                        need(&buf, 8)?;
                        Some(buf.get_u64())
                    }
                    other => return Err(WireError::BadDetailFlag(other)),
                }
            } else {
                None
            };
            need(&buf, 4)?;
            let n = buf.get_u32() as usize;
            let mut planes = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                planes.push(get_blob(&mut buf)?);
            }
            Frame::Query {
                id,
                deadline_ms,
                trace,
                planes,
            }
        }
        TAG_RESULT => {
            need(&buf, 12)?;
            let id = buf.get_u64();
            let batch_size = buf.get_u32();
            let ciphertext = get_blob(&mut buf)?;
            let timing = if version >= 6 {
                get_opt_timing(&mut buf)?
            } else {
                None
            };
            Frame::Result {
                id,
                batch_size,
                ciphertext,
                timing,
            }
        }
        TAG_STATS => Frame::Stats,
        TAG_STATS_REPORT => {
            need(&buf, 56)?;
            let queries_served = buf.get_u64();
            let batches = buf.get_u64();
            let max_batch = buf.get_u32();
            let pool_threads = buf.get_u32();
            let mut stage_ops = [0u64; 4];
            for slot in &mut stage_ops {
                *slot = buf.get_u64();
            }
            let (mut queue_wait_nanos, mut eval_nanos) = (0u64, 0u64);
            let mut model_latencies = Vec::new();
            if version >= 3 {
                need(&buf, 20)?;
                queue_wait_nanos = buf.get_u64();
                eval_nanos = buf.get_u64();
                let n = buf.get_u32() as usize;
                model_latencies.reserve(n.min(1024));
                for _ in 0..n {
                    let model = get_string(&mut buf)?;
                    need(&buf, 40)?;
                    model_latencies.push(ModelLatency {
                        model,
                        queries: buf.get_u64(),
                        p50_nanos: buf.get_u64(),
                        p90_nanos: buf.get_u64(),
                        p99_nanos: buf.get_u64(),
                        max_nanos: buf.get_u64(),
                    });
                }
            }
            let (mut queries_shed, mut queries_expired, mut conn_timeouts) = (0u64, 0u64, 0u64);
            let mut queue_depths = Vec::new();
            if version >= 5 {
                need(&buf, 28)?;
                queries_shed = buf.get_u64();
                queries_expired = buf.get_u64();
                conn_timeouts = buf.get_u64();
                let n = buf.get_u32() as usize;
                queue_depths.reserve(n.min(1024));
                for _ in 0..n {
                    let model = get_string(&mut buf)?;
                    need(&buf, 16)?;
                    queue_depths.push(ModelQueueDepth {
                        model,
                        depth: buf.get_u32(),
                        capacity: buf.get_u32(),
                        shed: buf.get_u64(),
                    });
                }
            }
            Frame::StatsReport {
                queries_served,
                batches,
                max_batch,
                pool_threads,
                stage_ops,
                queue_wait_nanos,
                eval_nanos,
                model_latencies,
                queries_shed,
                queries_expired,
                conn_timeouts,
                queue_depths,
            }
        }
        TAG_ERROR => {
            let message = get_string(&mut buf)?;
            let detail = if version >= 4 {
                need(&buf, 1)?;
                match buf.get_u8() {
                    0 => None,
                    1 => {
                        let model = get_string(&mut buf)?;
                        need(&buf, 17)?;
                        let code = RejectionCode::from_byte(buf.get_u8())?;
                        Some(RejectionDetail {
                            model,
                            code,
                            required: buf.get_u64(),
                            available: buf.get_u64(),
                        })
                    }
                    other => return Err(WireError::BadDetailFlag(other)),
                }
            } else {
                None
            };
            let timing = if version >= 6 {
                get_opt_timing(&mut buf)?
            } else {
                None
            };
            Frame::Error {
                message,
                detail,
                timing,
            }
        }
        TAG_BYE => Frame::Bye,
        // Busy entered the vocabulary at version 5: a lower version
        // byte claiming the tag is framing corruption, not a frame.
        TAG_BUSY if version >= 5 => {
            need(&buf, 8)?;
            let id = buf.get_u64();
            let model = get_string(&mut buf)?;
            need(&buf, 8)?;
            let queue_depth = buf.get_u32();
            let retry_after_ms = buf.get_u32();
            if retry_after_ms > MAX_RETRY_AFTER_MS {
                return Err(WireError::FieldOutOfRange {
                    field: "retry_after_ms",
                    value: u64::from(retry_after_ms),
                });
            }
            let timing = if version >= 6 {
                get_opt_timing(&mut buf)?
            } else {
                None
            };
            Frame::Busy {
                id,
                detail: ShedDetail {
                    model,
                    queue_depth,
                    retry_after_ms,
                },
                timing,
            }
        }
        // The metrics pull entered the vocabulary at version 6: a
        // lower version byte claiming these tags is framing
        // corruption, not a frame.
        TAG_METRICS_REQUEST if version >= 6 => Frame::MetricsRequest,
        TAG_METRICS_REPORT if version >= 6 => {
            let raw = get_blob(&mut buf)?;
            let text = String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadString)?;
            Frame::MetricsReport { text }
        }
        other => return Err(WireError::BadTag(other)),
    };
    if buf.remaining() > 0 {
        return Err(WireError::TrailingBytes {
            extra: buf.remaining(),
        });
    }
    Ok((frame, version))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::CompileOptions;
    use crate::runtime::Maurice;
    use copse_forest::model::Forest;

    fn sample_info() -> QueryInfo {
        let forest = Forest::parse(
            "labels no maybe yes\n\
             tree (branch 0 9 (branch 1 4 (leaf 0) (leaf 1)) (leaf 2))\n",
        )
        .unwrap();
        Maurice::compile(&forest, CompileOptions::default())
            .unwrap()
            .public_query_info()
    }

    #[test]
    fn roundtrip() {
        let info = sample_info();
        let decoded = decode_query_info(encode_query_info(&info)).unwrap();
        assert_eq!(decoded, info);
    }

    #[test]
    fn roundtrip_with_unicode_labels() {
        let mut info = sample_info();
        info.label_names = vec!["否".into(), "peut-être".into(), "да".into()];
        let decoded = decode_query_info(encode_query_info(&info)).unwrap();
        assert_eq!(decoded.label_names, info.label_names);
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let encoded = encode_query_info(&sample_info());
        for cut in 0..encoded.len() {
            let err = decode_query_info(encoded.slice(0..cut)).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn version_and_tag_checked() {
        let encoded = encode_query_info(&sample_info());
        let mut bad = encoded.to_vec();
        bad[0] = 9;
        assert_eq!(
            decode_query_info(Bytes::from(bad.clone())).unwrap_err(),
            WireError::BadVersion(9)
        );
        bad[0] = WIRE_VERSION;
        bad[1] = 0x00;
        assert_eq!(
            decode_query_info(Bytes::from(bad)).unwrap_err(),
            WireError::BadTag(0)
        );
    }

    #[test]
    fn codebook_validation() {
        let mut info = sample_info();
        info.codebook[0] = 99; // out of range for 3 labels
        let err = decode_query_info(encode_query_info(&info)).unwrap_err();
        assert_eq!(
            err,
            WireError::BadCodebook {
                index: 99,
                labels: 3
            }
        );
    }

    fn sample_timing() -> ServerTiming {
        ServerTiming {
            worker: 3,
            cause: TimingCause::Served,
            enqueue_nanos: 12_000,
            dequeue_nanos: 480_000,
            assembled_nanos: 530_000,
            stage_nanos: [1_000_000, 700_000, 3_300_000, 60_000],
            encode_nanos: 5_700_000,
            batch_size: 4,
            batch_peers: vec![0xAAAA_0001, 0xAAAA_0002],
        }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::ClientHello {
                model: "income5".into(),
            },
            Frame::ServerHello {
                session: 0xDEAD_BEEF_0042,
                encrypted_model: true,
                info: sample_info(),
            },
            Frame::ListModels,
            Frame::ModelList {
                models: vec!["income5".into(), "soccer15".into(), "µ-bench".into()],
            },
            Frame::Query {
                id: 7,
                deadline_ms: 2_500,
                trace: Some(0x7ACE_D007_0000_0001),
                planes: vec![
                    Bytes::from(vec![0xC1, 0, 1, 2]),
                    Bytes::from(vec![0xC1]),
                    Bytes::new(),
                ],
            },
            Frame::Result {
                id: 7,
                batch_size: 3,
                ciphertext: Bytes::from(vec![9u8; 33]),
                timing: Some(sample_timing()),
            },
            Frame::Stats,
            Frame::MetricsRequest,
            Frame::MetricsReport {
                text: "# TYPE copse_queries_served counter\n\
                       copse_queries_served 1000003\n"
                    .into(),
            },
            Frame::StatsReport {
                queries_served: 1_000_003,
                batches: 250_001,
                max_batch: 8,
                pool_threads: 16,
                stage_ops: [10, 20, 30, 40],
                queue_wait_nanos: 5_500_000,
                eval_nanos: 77_000_000,
                model_latencies: vec![
                    ModelLatency {
                        model: "income5".into(),
                        queries: 640_000,
                        p50_nanos: 1 << 20,
                        p90_nanos: 1 << 21,
                        p99_nanos: 1 << 22,
                        max_nanos: 5_123_456,
                    },
                    ModelLatency {
                        model: "µ-bench".into(),
                        queries: 3,
                        p50_nanos: 999,
                        p90_nanos: 999,
                        p99_nanos: 999,
                        max_nanos: 999,
                    },
                ],
                queries_shed: 4_200,
                queries_expired: 17,
                conn_timeouts: 3,
                queue_depths: vec![ModelQueueDepth {
                    model: "income5".into(),
                    depth: 12,
                    capacity: 64,
                    shed: 4_200,
                }],
            },
            Frame::Busy {
                id: 99,
                detail: ShedDetail {
                    model: "income5".into(),
                    queue_depth: 64,
                    retry_after_ms: 250,
                },
                timing: Some(ServerTiming {
                    worker: 0,
                    cause: TimingCause::Shed,
                    enqueue_nanos: 9_000,
                    dequeue_nanos: 9_000,
                    assembled_nanos: 9_000,
                    stage_nanos: [0; 4],
                    encode_nanos: 11_000,
                    batch_size: 0,
                    batch_peers: Vec::new(),
                }),
            },
            Frame::Error {
                message: "model `chess` rejected at deploy time".into(),
                detail: Some(RejectionDetail {
                    model: "chess".into(),
                    code: RejectionCode::DepthExceeded,
                    required: 19,
                    available: 14,
                }),
                timing: Some(ServerTiming {
                    worker: 2,
                    cause: TimingCause::Expired,
                    enqueue_nanos: 14_000,
                    dequeue_nanos: 2_600_000,
                    assembled_nanos: 2_600_000,
                    stage_nanos: [0; 4],
                    encode_nanos: 2_700_000,
                    batch_size: 0,
                    batch_peers: Vec::new(),
                }),
            },
            Frame::Bye,
        ]
    }

    /// The frame an old-session decode is expected to yield: the same
    /// frame with every field the version's vocabulary lacks dropped
    /// to its decode default.
    fn downgraded(frame: &Frame, version: u8) -> Frame {
        let mut f = frame.clone();
        match &mut f {
            Frame::Query {
                deadline_ms, trace, ..
            } => {
                if version < 5 {
                    *deadline_ms = 0;
                }
                if version < 6 {
                    *trace = None;
                }
            }
            Frame::Result { timing, .. } | Frame::Busy { timing, .. } if version < 6 => {
                *timing = None;
            }
            Frame::Error { detail, timing, .. } => {
                if version < 4 {
                    *detail = None;
                }
                if version < 6 {
                    *timing = None;
                }
            }
            Frame::StatsReport {
                queue_wait_nanos,
                eval_nanos,
                model_latencies,
                queries_shed,
                queries_expired,
                conn_timeouts,
                queue_depths,
                ..
            } => {
                if version < 3 {
                    *queue_wait_nanos = 0;
                    *eval_nanos = 0;
                    model_latencies.clear();
                }
                if version < 5 {
                    *queries_shed = 0;
                    *queries_expired = 0;
                    *conn_timeouts = 0;
                    queue_depths.clear();
                }
            }
            _ => {}
        }
        f
    }

    #[test]
    fn every_frame_roundtrips() {
        for frame in sample_frames() {
            let decoded = decode_frame(encode_frame(&frame)).unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn frame_tags_are_distinct() {
        let frames = sample_frames();
        let mut tags: Vec<u8> = frames.iter().map(Frame::tag).collect();
        tags.push(TAG_QUERY_INFO);
        tags.sort_unstable();
        let n = tags.len();
        tags.dedup();
        assert_eq!(tags.len(), n, "duplicate frame tag");
    }

    /// Oldest version a frame can be encoded at ([`Frame::Busy`]
    /// entered the vocabulary at 5, the metrics pull at 6; everything
    /// else downgrades).
    fn min_encodable_version(frame: &Frame) -> u8 {
        match frame {
            Frame::Busy { .. } => 5,
            Frame::MetricsRequest | Frame::MetricsReport { .. } => 6,
            _ => WIRE_VERSION_MIN,
        }
    }

    #[test]
    fn frame_truncation_detected_at_every_length() {
        for frame in sample_frames() {
            for version in [min_encodable_version(&frame), WIRE_VERSION] {
                let encoded = encode_frame_versioned(&frame, version);
                for cut in 0..encoded.len() {
                    let err = decode_frame(encoded.slice(0..cut)).unwrap_err();
                    assert_eq!(
                        err,
                        WireError::Truncated,
                        "{frame:?} v{version} cut at {cut}"
                    );
                }
            }
        }
    }

    #[test]
    fn busy_tag_on_a_pre_v5_session_is_a_bad_tag() {
        // A v4 (or older) session never negotiated the overload
        // vocabulary, so a Busy tag arriving with an old version byte
        // is hostile input, not a frame.
        let frame = Frame::Busy {
            id: 7,
            detail: ShedDetail {
                model: "income5".into(),
                queue_depth: 8,
                retry_after_ms: 100,
            },
            timing: None,
        };
        // Encode at v5 (not current) so the body carries no v6 tail:
        // the test is about the tag gate, not trailing bytes.
        let mut bytes = encode_frame_versioned(&frame, 5).to_vec();
        for version in WIRE_VERSION_MIN..5 {
            bytes[0] = version;
            assert_eq!(
                decode_frame(Bytes::from(bytes.clone())).unwrap_err(),
                WireError::BadTag(TAG_BUSY),
                "v{version}"
            );
        }
    }

    #[test]
    fn metrics_tags_on_a_pre_v6_session_are_bad_tags() {
        // Pre-6 sessions never negotiated the metrics pull, so these
        // tags arriving with an old version byte are hostile input.
        for frame in [
            Frame::MetricsRequest,
            Frame::MetricsReport {
                text: "x 1\n".into(),
            },
        ] {
            let mut bytes = encode_frame(&frame).to_vec();
            let tag = frame.tag();
            for version in WIRE_VERSION_MIN..6 {
                bytes[0] = version;
                assert_eq!(
                    decode_frame(Bytes::from(bytes.clone())).unwrap_err(),
                    WireError::BadTag(tag),
                    "v{version}"
                );
            }
        }
    }

    #[test]
    fn oversized_retry_after_ms_is_rejected_not_trusted() {
        // The encoder clamps; a hand-crafted frame past the cap is
        // rejected so a hostile server cannot park clients forever.
        let frame = Frame::Busy {
            id: 7,
            detail: ShedDetail {
                model: "m".into(),
                queue_depth: 8,
                retry_after_ms: 100,
            },
            timing: None,
        };
        let mut bytes = encode_frame(&frame).to_vec();
        // The v6 body ends retry_after_ms(4) + timing flag(1).
        let at = bytes.len() - 5;
        bytes[at..at + 4].copy_from_slice(&(MAX_RETRY_AFTER_MS + 1).to_be_bytes());
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::FieldOutOfRange {
                field: "retry_after_ms",
                value: u64::from(MAX_RETRY_AFTER_MS) + 1,
            }
        );
    }

    #[test]
    fn encoder_clamps_retry_after_ms_to_the_wire_cap() {
        let frame = Frame::Busy {
            id: 7,
            detail: ShedDetail {
                model: "m".into(),
                queue_depth: 8,
                retry_after_ms: u32::MAX,
            },
            timing: None,
        };
        let (decoded, _) = decode_frame_with_version(encode_frame(&frame)).unwrap();
        match decoded {
            Frame::Busy { detail, .. } => assert_eq!(detail.retry_after_ms, MAX_RETRY_AFTER_MS),
            other => panic!("expected Busy, got {other:?}"),
        }
    }

    #[test]
    fn oversized_query_deadline_is_rejected() {
        // deadline_ms sits right after the 8-byte query id at v5.
        let frame = Frame::Query {
            id: 3,
            deadline_ms: 0,
            trace: None,
            planes: vec![Bytes::copy_from_slice(b"p")],
        };
        let mut bytes = encode_frame(&frame).to_vec();
        bytes[10..14].copy_from_slice(&(MAX_DEADLINE_MS + 1).to_be_bytes());
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::FieldOutOfRange {
                field: "deadline_ms",
                value: u64::from(MAX_DEADLINE_MS) + 1,
            }
        );
    }

    #[test]
    fn v2_sessions_still_roundtrip_every_frame() {
        // A version-2 encoding of any frame decodes, and the decoder
        // reports the version so the server can answer in kind. Every
        // field the v2 vocabulary lacks (latency stats, overload
        // counters, rejection detail, deadline, trace id, timing) is
        // dropped; everything else survives. Busy and the metrics
        // pull have no pre-5/pre-6 encoding and are skipped here.
        for frame in sample_frames() {
            if min_encodable_version(&frame) > 2 {
                continue;
            }
            let encoded = encode_frame_versioned(&frame, 2);
            assert_eq!(encoded[0], 2, "old clients check this byte first");
            let (decoded, version) = decode_frame_with_version(encoded).unwrap();
            assert_eq!(version, 2);
            assert_eq!(decoded, downgraded(&frame, 2), "{frame:?}");
        }
    }

    #[test]
    fn v2_stats_report_body_is_byte_identical_to_the_old_format() {
        // The legacy body layout old clients parse: 8+8+4+4+4*8 = 56
        // bytes after the two header bytes, nothing more.
        let frame = sample_frames()
            .into_iter()
            .find(|f| matches!(f, Frame::StatsReport { .. }))
            .unwrap();
        let encoded = encode_frame_versioned(&frame, 2);
        assert_eq!(encoded.len(), 2 + 56);
    }

    #[test]
    fn current_frames_decode_as_the_current_version() {
        for frame in sample_frames() {
            let (decoded, version) = decode_frame_with_version(encode_frame(&frame)).unwrap();
            assert_eq!(version, WIRE_VERSION);
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn v3_and_v4_sessions_drop_only_the_fields_their_version_lacks() {
        // v3 keeps the latency stats but drops the v4 error detail and
        // everything v5/v6 added; v4 additionally keeps the error
        // detail. Busy and the metrics pull cannot be encoded at
        // these versions and are skipped.
        for version in [3u8, 4] {
            for frame in sample_frames() {
                if min_encodable_version(&frame) > version {
                    continue;
                }
                let encoded = encode_frame_versioned(&frame, version);
                let (decoded, seen) = decode_frame_with_version(encoded).unwrap();
                assert_eq!(seen, version);
                assert_eq!(decoded, downgraded(&frame, version), "v{version} {frame:?}");
            }
        }
    }

    #[test]
    fn v5_sessions_drop_only_the_v6_trace_fields() {
        // A v5 session keeps everything up to the overload vocabulary
        // but must never see a trace id or a ServerTiming record.
        for frame in sample_frames() {
            if min_encodable_version(&frame) > 5 {
                continue;
            }
            let encoded = encode_frame_versioned(&frame, 5);
            let (decoded, seen) = decode_frame_with_version(encoded).unwrap();
            assert_eq!(seen, 5);
            let expected = downgraded(&frame, 5);
            assert_eq!(decoded, expected, "{frame:?}");
            // The samples for the extended frames genuinely carry the
            // v6 fields, so the downgrade must actually bite.
            if matches!(
                frame,
                Frame::Query { .. }
                    | Frame::Result { .. }
                    | Frame::Busy { .. }
                    | Frame::Error { .. }
            ) {
                assert_ne!(expected, frame, "sample lost no v6 field: {frame:?}");
            }
        }
    }

    #[test]
    fn v5_bodies_are_byte_identical_to_the_pre_v6_format() {
        // Byte-layout pins for every frame the v6 vocabulary extended:
        // a v5 session's bytes must be exactly what a v5 build wrote.
        for frame in sample_frames() {
            let expected = match &frame {
                Frame::Query {
                    deadline_ms: _,
                    planes,
                    ..
                } => {
                    // header(2) + id(8) + deadline(4) + count(4) + blobs
                    Some(2 + 8 + 4 + 4 + planes.iter().map(|p| 4 + p.len()).sum::<usize>())
                }
                Frame::Result { ciphertext, .. } => Some(2 + 8 + 4 + 4 + ciphertext.len()),
                Frame::Busy { detail, .. } => Some(2 + 8 + 2 + detail.model.len() + 4 + 4),
                Frame::Error {
                    message,
                    detail: Some(d),
                    ..
                } => {
                    // header + message + flag(1) + model + code(1)
                    // + required(8) + available(8)
                    Some(2 + 2 + message.len() + 1 + 2 + d.model.len() + 1 + 8 + 8)
                }
                _ => None,
            };
            if let Some(expected) = expected {
                let encoded = encode_frame_versioned(&frame, 5);
                assert_eq!(encoded.len(), expected, "{frame:?}");
            }
        }
    }

    #[test]
    fn error_without_detail_roundtrips_at_every_version() {
        let frame = Frame::Error {
            message: "unknown model `chess`".into(),
            detail: None,
            timing: None,
        };
        for version in WIRE_VERSION_MIN..=WIRE_VERSION {
            let (decoded, seen) =
                decode_frame_with_version(encode_frame_versioned(&frame, version)).unwrap();
            assert_eq!(seen, version);
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn rejection_code_bytes_are_stable_and_checked() {
        for code in [
            RejectionCode::DepthExceeded,
            RejectionCode::SlotRotationUnsupported,
            RejectionCode::SlotCapacityExceeded,
        ] {
            assert_eq!(RejectionCode::from_byte(code.to_byte()).unwrap(), code);
        }
        assert_eq!(
            RejectionCode::from_byte(0).unwrap_err(),
            WireError::BadRejectionCode(0)
        );
        // A corrupted detail flag is rejected, not guessed at. The v6
        // body ends detail flag(1) + timing flag(1).
        let mut bytes = encode_frame(&Frame::Error {
            message: "m".into(),
            detail: None,
            timing: None,
        })
        .to_vec();
        let flag_at = bytes.len() - 2;
        bytes[flag_at] = 7;
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::BadDetailFlag(7)
        );
    }

    #[test]
    fn timing_cause_bytes_are_stable_and_checked() {
        for cause in [
            TimingCause::Served,
            TimingCause::Shed,
            TimingCause::Expired,
            TimingCause::Failed,
        ] {
            assert_eq!(TimingCause::from_byte(cause.to_byte()).unwrap(), cause);
        }
        assert_eq!(
            TimingCause::from_byte(9).unwrap_err(),
            WireError::BadTimingCause(9)
        );
        // A corrupted cause byte inside a framed timing record is
        // rejected at decode, not guessed at. The cause sits right
        // after the timing flag and the 4-byte worker id; the record
        // here rides a Result frame whose body is
        // id(8) + batch_size(4) + blob(4 + len) before the flag.
        let frame = Frame::Result {
            id: 1,
            batch_size: 1,
            ciphertext: Bytes::from(vec![7u8; 5]),
            timing: Some(sample_timing()),
        };
        let mut bytes = encode_frame(&frame).to_vec();
        let cause_at = 2 + 8 + 4 + 4 + 5 + 1 + 4;
        bytes[cause_at] = 200;
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::BadTimingCause(200)
        );
    }

    #[test]
    fn hostile_batch_peer_count_is_rejected() {
        // The peer count is the last 4 bytes before the (empty) peer
        // list when the sample's peers are cleared; a count past
        // MAX_BATCH_PEERS must be refused before any allocation.
        let mut timing = sample_timing();
        timing.batch_peers.clear();
        let frame = Frame::Result {
            id: 1,
            batch_size: 1,
            ciphertext: Bytes::new(),
            timing: Some(timing),
        };
        let mut bytes = encode_frame(&frame).to_vec();
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&((MAX_BATCH_PEERS as u32) + 1).to_be_bytes());
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::FieldOutOfRange {
                field: "batch_peers",
                value: MAX_BATCH_PEERS as u64 + 1,
            }
        );
    }

    #[test]
    fn hostile_trace_flag_is_rejected() {
        // The trace presence flag sits right after the deadline.
        let frame = Frame::Query {
            id: 3,
            deadline_ms: 0,
            trace: None,
            planes: vec![Bytes::copy_from_slice(b"p")],
        };
        let mut bytes = encode_frame(&frame).to_vec();
        bytes[14] = 3;
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::BadDetailFlag(3)
        );
    }

    #[test]
    fn hostile_timing_flag_is_rejected() {
        // The timing presence flag is the last byte of a timing-free
        // v6 Result body.
        let frame = Frame::Result {
            id: 1,
            batch_size: 1,
            ciphertext: Bytes::new(),
            timing: None,
        };
        let mut bytes = encode_frame(&frame).to_vec();
        let at = bytes.len() - 1;
        bytes[at] = 2;
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::BadDetailFlag(2)
        );
    }

    #[test]
    fn metrics_report_text_must_be_utf8() {
        let mut bytes = encode_frame(&Frame::MetricsReport { text: "ab".into() }).to_vec();
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        bytes[n - 2] = 0xFE;
        assert_eq!(
            decode_frame(Bytes::from(bytes)).unwrap_err(),
            WireError::BadString
        );
    }

    #[test]
    #[should_panic(expected = "no encoding below wire version 6")]
    fn encoding_a_metrics_frame_below_v6_is_refused() {
        let _ = encode_frame_versioned(&Frame::MetricsRequest, 5);
    }

    #[test]
    #[should_panic(expected = "cannot encode wire version")]
    fn encoding_an_unknown_version_is_refused() {
        let _ = encode_frame_versioned(&Frame::Bye, 1);
    }

    #[test]
    fn frame_version_and_tag_checked() {
        for frame in sample_frames() {
            let encoded = encode_frame(&frame).to_vec();
            let mut bad_version = encoded.clone();
            bad_version[0] = 0xEE;
            assert_eq!(
                decode_frame(Bytes::from(bad_version)).unwrap_err(),
                WireError::BadVersion(0xEE)
            );
        }
        let mut bad_tag = encode_frame(&Frame::Bye).to_vec();
        bad_tag[1] = 0x7F;
        assert_eq!(
            decode_frame(Bytes::from(bad_tag)).unwrap_err(),
            WireError::BadTag(0x7F)
        );
    }

    #[test]
    fn frame_trailing_bytes_rejected() {
        for frame in sample_frames() {
            let mut bad = encode_frame(&frame).to_vec();
            bad.extend_from_slice(&[0xAB, 0xCD]);
            assert_eq!(
                decode_frame(Bytes::from(bad)).unwrap_err(),
                WireError::TrailingBytes { extra: 2 },
                "{frame:?}"
            );
        }
    }

    #[test]
    fn server_hello_validates_codebook_like_query_info() {
        let mut info = sample_info();
        info.codebook[0] = 77;
        let err = decode_frame(encode_frame(&Frame::ServerHello {
            session: 1,
            encrypted_model: false,
            info,
        }))
        .unwrap_err();
        assert_eq!(
            err,
            WireError::BadCodebook {
                index: 77,
                labels: 3
            }
        );
    }

    #[test]
    fn non_utf8_strings_rejected() {
        let mut bad = encode_frame(&Frame::ClientHello { model: "ab".into() }).to_vec();
        let n = bad.len();
        bad[n - 1] = 0xFF;
        bad[n - 2] = 0xFE;
        assert_eq!(
            decode_frame(Bytes::from(bad)).unwrap_err(),
            WireError::BadString
        );
    }

    #[test]
    fn handshake_reveals_only_public_data() {
        // The message must carry exactly the fields of the paper's
        // step-0 handshake: K, feature count, precision, result width
        // and codebook - nothing about thresholds or structure.
        let info = sample_info();
        let encoded = encode_query_info(&info);
        // 2 (header) + 5*4 + labels + 4 + codebook
        let label_bytes: usize = info.label_names.iter().map(|n| 2 + n.len()).sum();
        assert_eq!(
            encoded.len(),
            2 + 20 + label_bytes + 4 + 4 * info.codebook.len()
        );
    }
}
