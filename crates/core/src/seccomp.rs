//! Secure packed comparison (the SecComp kernel, paper §4.1.2).
//!
//! Compares `k` fixed-point feature values against `k` thresholds — all
//! in parallel — given both sides in the transposed bit-sliced layout
//! (plane `i` of all values in one packed vector, MSB first). This is
//! COPSE's step 1: one invocation thresholds *every* decision node of
//! the forest at once, regardless of the number of branches.
//!
//! The comparison is the standard lexicographic circuit: value `x` is
//! below `y` iff at the first differing bit position `x` has 0 and `y`
//! has 1. Writing `e_i = ¬(x_i ⊕ y_i)` (bit equality) and
//! `l_i = ¬x_i ∧ y_i` (strictly-below at bit `i`),
//!
//! ```text
//! x < y  =  l_0  ⊕  ⨁_{i=1}^{p-1} (e_0 ∧ … ∧ e_{i-1}) ∧ l_i
//! ```
//!
//! where the XOR-accumulation is exact because at most one term fires.
//! Two strategies compute the equality-prefix terms
//! ([`SecCompVariant`]):
//!
//! * [`LadderPrefix`](SecCompVariant::LadderPrefix) — every term's
//!   product is evaluated independently by balanced pairwise
//!   multiplication, exactly as Aloufi et al. describe ("the
//!   multiplications in each term are evaluated recursively in pairs").
//!   `Θ(p²)` multiplies, depth `⌈log₂ p⌉ + 1`. This is the paper-parity
//!   default: the paper uses Aloufi's SecComp in both COPSE and the
//!   baseline.
//! * [`SharedPrefix`](SecCompVariant::SharedPrefix) — a Hillis–Steele
//!   AND-scan shares prefixes across terms: `Θ(p log p)` multiplies,
//!   same depth up to a constant. A strict improvement we provide as an
//!   ablation (it shrinks the baseline's per-branch comparison cost
//!   b-fold more than COPSE's single comparison, so it *narrows* the
//!   paper's speedup).

use crate::parallel::{map_indices, Parallelism};
use copse_fhe::{FheBackend, MaybeEncrypted};

/// Strategy for the equality-prefix products inside SecComp.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SecCompVariant {
    /// Independent balanced product per term (Aloufi et al.; the
    /// paper-parity default).
    #[default]
    LadderPrefix,
    /// Hillis-Steele shared prefix scan (our cheaper alternative).
    SharedPrefix,
}

/// Computes the packed decision vector `features < thresholds`.
///
/// `features` and `thresholds` are `p` bit planes each (MSB first,
/// equal widths). Thresholds may be plaintext (Maurice = Sally) or
/// encrypted (offloaded model). Returns one ciphertext whose slot `j`
/// is `feature[j] < threshold[j]`.
///
/// # Panics
///
/// Panics if the plane counts differ or are zero.
pub fn secure_less_than<B: FheBackend>(
    backend: &B,
    features: &[B::Ciphertext],
    thresholds: &[MaybeEncrypted<B>],
    variant: SecCompVariant,
    parallelism: Parallelism,
) -> B::Ciphertext {
    assert!(!features.is_empty(), "at least one bit plane required");
    assert_eq!(
        features.len(),
        thresholds.len(),
        "feature and threshold precision differ"
    );
    let p = features.len();

    // Per-plane strictly-below bits: l_i = NOT(x_i) AND t_i.
    let below: Vec<B::Ciphertext> = map_indices(parallelism, p, |i| {
        thresholds[i].mul_into(backend, &backend.not(&features[i]))
    });

    if p == 1 {
        return below.into_iter().next().expect("p == 1");
    }

    // Equality bits for planes 0..p-2 (plane p-1 never prefixes):
    // e_i = NOT(x_i XOR t_i).
    let equal: Vec<B::Ciphertext> = map_indices(parallelism, p - 1, |i| {
        backend.not(&thresholds[i].add_into(backend, &features[i]))
    });

    let terms: Vec<B::Ciphertext> = match variant {
        SecCompVariant::LadderPrefix => map_indices(parallelism, p - 1, |j| {
            let i = j + 1;
            let mut factors = Vec::with_capacity(i + 1);
            factors.push(below[i].clone());
            factors.extend(equal[..i].iter().cloned());
            balanced_product(backend, factors)
        }),
        SecCompVariant::SharedPrefix => {
            // Hillis-Steele inclusive AND-scan:
            // prefix[i] = e_0 ∧ ... ∧ e_i.
            let mut prefix = equal;
            let mut step = 1;
            while step < prefix.len() {
                let snapshot = prefix.clone();
                let updated = map_indices(parallelism, prefix.len() - step, |j| {
                    let i = j + step;
                    backend.mul(&snapshot[i], &snapshot[i - step])
                });
                for (j, v) in updated.into_iter().enumerate() {
                    prefix[j + step] = v;
                }
                step *= 2;
            }
            map_indices(parallelism, p - 1, |j| {
                backend.mul(&prefix[j], &below[j + 1])
            })
        }
    };

    // Combine: l_0 XOR the per-position terms.
    let mut acc = below[0].clone();
    for t in &terms {
        acc = backend.add(&acc, t);
    }
    acc
}

/// Balanced pairwise product of `factors` (`n-1` multiplies, depth
/// `⌈log₂ n⌉` above the deepest factor). Shared by SecComp's ladder
/// variant and the polynomial baseline.
pub fn balanced_product<B: FheBackend>(
    backend: &B,
    mut factors: Vec<B::Ciphertext>,
) -> B::Ciphertext {
    assert!(!factors.is_empty(), "product of no factors");
    while factors.len() > 1 {
        let mut next = Vec::with_capacity(factors.len().div_ceil(2));
        for chunk in factors.chunks(2) {
            next.push(match chunk {
                [a, b] => backend.mul(a, b),
                [a] => a.clone(),
                _ => unreachable!("chunks(2)"),
            });
        }
        factors = next;
    }
    factors.into_iter().next().expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_fhe::{BitSliced, BitVec, ClearBackend, FheBackend};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const VARIANTS: [SecCompVariant; 2] =
        [SecCompVariant::LadderPrefix, SecCompVariant::SharedPrefix];

    fn run_comparison(
        xs: &[u64],
        ts: &[u64],
        precision: u32,
        encrypted_thresholds: bool,
        variant: SecCompVariant,
        threads: usize,
    ) -> Vec<bool> {
        let be = ClearBackend::with_defaults();
        let x = BitSliced::from_values(xs, precision);
        let t = BitSliced::from_values(ts, precision);
        let feats: Vec<_> = x.planes().iter().map(|p| be.encrypt_bits(p)).collect();
        let thresh: Vec<MaybeEncrypted<ClearBackend>> = t
            .planes()
            .iter()
            .map(|p| {
                if encrypted_thresholds {
                    MaybeEncrypted::Encrypted(be.encrypt_bits(p))
                } else {
                    MaybeEncrypted::Plain(be.encode(p))
                }
            })
            .collect();
        let out = secure_less_than(&be, &feats, &thresh, variant, Parallelism { threads });
        be.decrypt(&out).to_bools()
    }

    #[test]
    fn compares_exhaustively_at_4_bits() {
        let all: Vec<u64> = (0..16).collect();
        for variant in VARIANTS {
            for &t in &all {
                let ts = vec![t; 16];
                let got = run_comparison(&all, &ts, 4, false, variant, 1);
                let want: Vec<bool> = all.iter().map(|&x| x < t).collect();
                assert_eq!(got, want, "threshold {t} variant {variant:?}");
            }
        }
    }

    #[test]
    fn encrypted_thresholds_agree_with_plain() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs: Vec<u64> = (0..24).map(|_| rng.gen_range(0..256)).collect();
        let ts: Vec<u64> = (0..24).map(|_| rng.gen_range(0..256)).collect();
        let want: Vec<bool> = xs.iter().zip(&ts).map(|(&x, &t)| x < t).collect();
        for variant in VARIANTS {
            assert_eq!(run_comparison(&xs, &ts, 8, true, variant, 1), want);
            assert_eq!(run_comparison(&xs, &ts, 8, false, variant, 1), want);
        }
    }

    #[test]
    fn variants_agree_everywhere() {
        let mut rng = SmallRng::seed_from_u64(6);
        for p in [2u32, 3, 5, 8, 16] {
            let bound = 1u64 << p;
            let xs: Vec<u64> = (0..20).map(|_| rng.gen_range(0..bound)).collect();
            let ts: Vec<u64> = (0..20).map(|_| rng.gen_range(0..bound)).collect();
            assert_eq!(
                run_comparison(&xs, &ts, p, true, SecCompVariant::LadderPrefix, 1),
                run_comparison(&xs, &ts, p, true, SecCompVariant::SharedPrefix, 1),
                "p = {p}"
            );
        }
    }

    #[test]
    fn shared_prefix_uses_fewer_multiplies() {
        let be = ClearBackend::with_defaults();
        let mut counts = Vec::new();
        for variant in VARIANTS {
            let x = BitSliced::from_values(&[100], 16);
            let t = BitSliced::from_values(&[200], 16);
            let feats: Vec<_> = x.planes().iter().map(|p| be.encrypt_bits(p)).collect();
            let thresh: Vec<_> = t
                .planes()
                .iter()
                .map(|p| MaybeEncrypted::Encrypted(be.encrypt_bits(p)))
                .collect();
            let before = be.meter().snapshot();
            let _ = secure_less_than(&be, &feats, &thresh, variant, Parallelism::sequential());
            counts.push(be.meter().snapshot().since(&before).multiply);
        }
        assert!(
            counts[1] < counts[0],
            "shared {} !< ladder {}",
            counts[1],
            counts[0]
        );
    }

    #[test]
    fn single_bit_precision() {
        // p = 1: x < t iff x = 0, t = 1.
        for variant in VARIANTS {
            let got = run_comparison(&[0, 0, 1, 1], &[0, 1, 0, 1], 1, false, variant, 1);
            assert_eq!(got, vec![false, true, false, false]);
        }
    }

    #[test]
    fn sixteen_bit_random() {
        let mut rng = SmallRng::seed_from_u64(11);
        let xs: Vec<u64> = (0..40).map(|_| rng.gen_range(0..65536)).collect();
        let ts: Vec<u64> = (0..40).map(|_| rng.gen_range(0..65536)).collect();
        let want: Vec<bool> = xs.iter().zip(&ts).map(|(&x, &t)| x < t).collect();
        for variant in VARIANTS {
            assert_eq!(run_comparison(&xs, &ts, 16, false, variant, 1), want);
        }
    }

    #[test]
    fn equal_values_are_not_below() {
        let xs = vec![5, 200, 0, 255];
        for variant in VARIANTS {
            assert_eq!(
                run_comparison(&xs.clone(), &xs, 8, false, variant, 1),
                vec![false; 4]
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = SmallRng::seed_from_u64(23);
        let xs: Vec<u64> = (0..33).map(|_| rng.gen_range(0..256)).collect();
        let ts: Vec<u64> = (0..33).map(|_| rng.gen_range(0..256)).collect();
        for variant in VARIANTS {
            assert_eq!(
                run_comparison(&xs, &ts, 8, true, variant, 4),
                run_comparison(&xs, &ts, 8, true, variant, 1)
            );
        }
    }

    #[test]
    fn depth_is_logarithmic_in_precision() {
        let be = ClearBackend::with_defaults();
        for variant in VARIANTS {
            for p in [2u32, 4, 8, 16] {
                let x = BitSliced::from_values(&[3], p);
                let t = BitSliced::from_values(&[2], p);
                let feats: Vec<_> = x.planes().iter().map(|pl| be.encrypt_bits(pl)).collect();
                let thresh: Vec<_> = t
                    .planes()
                    .iter()
                    .map(|pl| MaybeEncrypted::Plain(be.encode(pl)))
                    .collect();
                let out =
                    secure_less_than(&be, &feats, &thresh, variant, Parallelism::sequential());
                let depth = be.depth(&out);
                let bound = (p as f64).log2().ceil() as u32 + 2;
                assert!(
                    depth <= bound,
                    "{variant:?} p={p}: depth {depth} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn comparison_cost_is_independent_of_slot_count() {
        // The packed comparison does the same number of homomorphic
        // ops whether it compares 4 or 400 values (paper §3.3 step 1).
        let be = ClearBackend::with_defaults();
        let mut counts = Vec::new();
        for width in [4usize, 400] {
            let xs: Vec<u64> = (0..width as u64).map(|i| i % 256).collect();
            let x = BitSliced::from_values(&xs, 8);
            let feats: Vec<_> = x.planes().iter().map(|pl| be.encrypt_bits(pl)).collect();
            let thresh: Vec<_> = x
                .planes()
                .iter()
                .map(|pl| MaybeEncrypted::Plain(be.encode(pl)))
                .collect();
            let before = be.meter().snapshot();
            let _ = secure_less_than(
                &be,
                &feats,
                &thresh,
                SecCompVariant::LadderPrefix,
                Parallelism::sequential(),
            );
            counts.push(be.meter().snapshot().since(&before));
        }
        assert_eq!(counts[0], counts[1]);
    }

    #[test]
    fn balanced_product_multiplies_all() {
        let be = ClearBackend::with_defaults();
        for n in 1..=9usize {
            let factors: Vec<_> = (0..n)
                .map(|i| be.encrypt_bits(&BitVec::from_bools(&[i != 3])))
                .collect();
            let out = balanced_product(&be, factors);
            let want = n <= 3; // factor 3 is false when present
            assert_eq!(be.decrypt(&out).get(0), want, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "precision differ")]
    fn mismatched_planes_panic() {
        let be = ClearBackend::with_defaults();
        let x = BitSliced::from_values(&[1], 4);
        let t = BitSliced::from_values(&[1], 8);
        let feats: Vec<_> = x.planes().iter().map(|p| be.encrypt_bits(p)).collect();
        let thresh: Vec<_> = t
            .planes()
            .iter()
            .map(|p| MaybeEncrypted::Plain(be.encode(p)))
            .collect();
        let _ = secure_less_than(
            &be,
            &feats,
            &thresh,
            SecCompVariant::LadderPrefix,
            Parallelism::sequential(),
        );
    }
}
