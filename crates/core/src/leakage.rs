//! Information-leakage audit (paper §7, Tables 3 and 4).
//!
//! COPSE's privacy story is not all-or-nothing: depending on which
//! notional parties (server `S`, model owner `M`, data owner `D`)
//! coincide or collude, different *structural* quantities leak — the
//! quantized branching `q` (from the reshuffle matrix width), the
//! branching `b` (from level-matrix widths and the result length), the
//! forest depth `d` (from the count of level matrices/masks), and the
//! maximum multiplicity `K` (revealed explicitly so queries can be
//! padded). This module encodes those tables as executable data so the
//! harness can regenerate them and the tests can pin them to the
//! paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A notional protocol participant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// The evaluator.
    Server,
    /// The model owner.
    ModelOwner,
    /// The data owner.
    DataOwner,
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Party::Server => "S",
            Party::ModelOwner => "M",
            Party::DataOwner => "D",
        })
    }
}

/// A piece of information that can leak to a party.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LeakedItem {
    /// Quantized branching `q` (reshuffle matrix width).
    QuantizedBranching,
    /// Branching `b` (level matrix width / result vector length).
    Branching,
    /// Maximum forest depth `d` (number of level matrices and masks).
    MaxDepth,
    /// Maximum feature multiplicity `K` (explicitly revealed).
    MaxMultiplicity,
    /// Full compromise: all model and data contents.
    Everything,
}

impl fmt::Display for LeakedItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LeakedItem::QuantizedBranching => "q",
            LeakedItem::Branching => "b",
            LeakedItem::MaxDepth => "d",
            LeakedItem::MaxMultiplicity => "K",
            LeakedItem::Everything => "everything",
        })
    }
}

/// The party configurations analysed by the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Two physical parties: model and data owned by the same party,
    /// computation offloaded (`S`, `M = D`) — the classic FHE
    /// offloading model used in the main benchmarks.
    OffloadedCompute,
    /// Two physical parties: the server owns the model (`S = M`, `D`).
    ServerOwnsModel,
    /// Two physical parties: the client evaluates (`S = D`, `M`).
    ClientEvaluates,
    /// Three physical parties, no collusion.
    ThreeParty,
    /// Three parties; the server colludes with the model owner.
    ThreePartyServerModelCollusion,
    /// Three parties; the server colludes with the data owner.
    ThreePartyServerDataCollusion,
}

impl Scenario {
    /// All scenarios, in the paper's table order (Table 3 rows, then
    /// Table 4 rows).
    pub const ALL: [Scenario; 6] = [
        Scenario::OffloadedCompute,
        Scenario::ServerOwnsModel,
        Scenario::ClientEvaluates,
        Scenario::ThreeParty,
        Scenario::ThreePartyServerModelCollusion,
        Scenario::ThreePartyServerDataCollusion,
    ];

    /// Human-readable name matching the paper's row labels.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::OffloadedCompute => "S, M = D",
            Scenario::ServerOwnsModel => "S = M, D",
            Scenario::ClientEvaluates => "S = D, M",
            Scenario::ThreeParty => "S, M, D, no collusion",
            Scenario::ThreePartyServerModelCollusion => "S, M, D, S colludes with M",
            Scenario::ThreePartyServerDataCollusion => "S, M, D, S colludes with D",
        }
    }
}

/// What each notional party learns in one scenario.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeakageProfile {
    /// The analysed scenario.
    pub scenario: Scenario,
    /// Items revealed to the server.
    pub to_server: Vec<LeakedItem>,
    /// Items revealed to the model owner.
    pub to_model_owner: Vec<LeakedItem>,
    /// Items revealed to the data owner.
    pub to_data_owner: Vec<LeakedItem>,
}

impl LeakageProfile {
    /// Items revealed to one party.
    pub fn revealed_to(&self, party: Party) -> &[LeakedItem] {
        match party {
            Party::Server => &self.to_server,
            Party::ModelOwner => &self.to_model_owner,
            Party::DataOwner => &self.to_data_owner,
        }
    }
}

/// The leakage profile of a scenario (paper Tables 3 and 4).
pub fn leakage_profile(scenario: Scenario) -> LeakageProfile {
    use LeakedItem::*;
    let (to_server, to_model_owner, to_data_owner) = match scenario {
        // Table 3. Matrices are encrypted as one ciphertext per
        // diagonal, so the server learns each matrix's column count: q
        // from R, b from the level matrices, and d from how many level
        // matrices and masks arrive.
        Scenario::OffloadedCompute => (
            vec![QuantizedBranching, Branching, MaxDepth],
            vec![],
            vec![],
        ),
        // The server owns the model, so nothing new reaches it; the
        // data owner needs K for padding and learns b + 1 as the
        // length of the returned inference vector.
        Scenario::ServerOwnsModel => (vec![], vec![], vec![MaxMultiplicity, Branching]),
        // The client evaluates: everything the server would see plus K
        // reaches the S = D party.
        Scenario::ClientEvaluates => (
            vec![QuantizedBranching, Branching, MaxMultiplicity, MaxDepth],
            vec![],
            vec![QuantizedBranching, Branching, MaxMultiplicity],
        ),
        // Table 4.
        Scenario::ThreeParty => (
            vec![QuantizedBranching, Branching, MaxDepth, MaxMultiplicity],
            vec![],
            vec![MaxMultiplicity, Branching],
        ),
        Scenario::ThreePartyServerModelCollusion => (
            vec![Everything],
            vec![Everything],
            vec![MaxMultiplicity, Branching],
        ),
        Scenario::ThreePartyServerDataCollusion => (vec![Everything], vec![], vec![Everything]),
    };
    LeakageProfile {
        scenario,
        to_server,
        to_model_owner,
        to_data_owner,
    }
}

/// Renders a scenario set as an aligned text table (the harness output
/// for Tables 3 and 4).
pub fn render_table(scenarios: &[Scenario]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} | {:<12} | {:<12} | {:<12}\n",
        "Scenario", "to S", "to M", "to D"
    ));
    out.push_str(&"-".repeat(74));
    out.push('\n');
    for &s in scenarios {
        let p = leakage_profile(s);
        let fmt_items = |items: &[LeakedItem]| -> String {
            if items.is_empty() {
                "(nothing)".to_string()
            } else {
                items
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        out.push_str(&format!(
            "{:<28} | {:<12} | {:<12} | {:<12}\n",
            s.label(),
            fmt_items(&p.to_server),
            fmt_items(&p.to_model_owner),
            fmt_items(&p.to_data_owner),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use LeakedItem::*;

    #[test]
    fn table3_row1_offloaded() {
        let p = leakage_profile(Scenario::OffloadedCompute);
        assert_eq!(p.to_server, vec![QuantizedBranching, Branching, MaxDepth]);
        assert!(p.to_model_owner.is_empty());
        assert!(p.to_data_owner.is_empty());
    }

    #[test]
    fn table3_row2_server_owns_model() {
        let p = leakage_profile(Scenario::ServerOwnsModel);
        assert!(p.to_server.is_empty());
        assert_eq!(p.to_data_owner, vec![MaxMultiplicity, Branching]);
    }

    #[test]
    fn table3_row3_client_evaluates() {
        let p = leakage_profile(Scenario::ClientEvaluates);
        assert_eq!(
            p.to_server,
            vec![QuantizedBranching, Branching, MaxMultiplicity, MaxDepth]
        );
        assert_eq!(
            p.to_data_owner,
            vec![QuantizedBranching, Branching, MaxMultiplicity]
        );
    }

    #[test]
    fn table4_no_collusion() {
        let p = leakage_profile(Scenario::ThreeParty);
        assert_eq!(
            p.to_server,
            vec![QuantizedBranching, Branching, MaxDepth, MaxMultiplicity]
        );
        assert!(p.to_model_owner.is_empty());
        assert_eq!(p.to_data_owner, vec![MaxMultiplicity, Branching]);
    }

    #[test]
    fn table4_collusion_compromises_everything() {
        let sm = leakage_profile(Scenario::ThreePartyServerModelCollusion);
        assert_eq!(sm.to_server, vec![Everything]);
        assert_eq!(sm.to_model_owner, vec![Everything]);
        assert_eq!(sm.to_data_owner, vec![MaxMultiplicity, Branching]);

        let sd = leakage_profile(Scenario::ThreePartyServerDataCollusion);
        assert_eq!(sd.to_server, vec![Everything]);
        assert!(sd.to_model_owner.is_empty());
        assert_eq!(sd.to_data_owner, vec![Everything]);
    }

    #[test]
    fn model_owner_never_learns_anything_without_collusion() {
        // The strongest property of the protocol: in every
        // non-colluding configuration the model owner learns nothing
        // about the data.
        for s in Scenario::ALL {
            if s != Scenario::ThreePartyServerModelCollusion {
                assert!(
                    leakage_profile(s).to_model_owner.is_empty(),
                    "{}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn render_lists_all_rows() {
        let text = render_table(&Scenario::ALL);
        for s in Scenario::ALL {
            assert!(text.contains(s.label()), "{}", s.label());
        }
        assert!(text.contains("(nothing)"));
    }

    #[test]
    fn revealed_to_accessor() {
        let p = leakage_profile(Scenario::ThreeParty);
        assert_eq!(p.revealed_to(Party::Server).len(), 4);
        assert_eq!(p.revealed_to(Party::ModelOwner).len(), 0);
        assert_eq!(p.revealed_to(Party::DataOwner).len(), 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(Party::Server.to_string(), "S");
        assert_eq!(LeakedItem::QuantizedBranching.to_string(), "q");
        assert_eq!(LeakedItem::Everything.to_string(), "everything");
    }
}
