//! Criterion microbenchmarks for the COPSE kernels: SecComp variants,
//! the Halevi-Shoup MatMul, the accumulation product, the RNS
//! ring-multiplication kernel (NTT vs schoolbook), and the BGV
//! rotate/key-switch kernels (evaluation-domain vs per-call
//! coefficient-domain transforms).

use copse_core::artifacts::BoolMatrix;
use copse_core::matmul::{mat_vec, EncodedMatrix, MatMulOptions};
use copse_core::parallel::Parallelism;
use copse_core::seccomp::{balanced_product, secure_less_than, SecCompVariant};
use copse_fhe::bgv::ring::RnsContext;
use copse_fhe::bgv::scheme::{BgvParams, BgvScheme};
use copse_fhe::{BitSliced, BitVec, ClearBackend, FheBackend, MaybeEncrypted};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_seccomp(c: &mut Criterion) {
    let mut group = c.benchmark_group("seccomp");
    group.sample_size(20);
    let be = ClearBackend::with_defaults();
    let mut rng = SmallRng::seed_from_u64(1);
    for p in [8u32, 16] {
        let width = 64usize;
        let xs: Vec<u64> = (0..width).map(|_| rng.gen_range(0..(1u64 << p))).collect();
        let ts: Vec<u64> = (0..width).map(|_| rng.gen_range(0..(1u64 << p))).collect();
        let x = BitSliced::from_values(&xs, p);
        let t = BitSliced::from_values(&ts, p);
        let feats: Vec<_> = x.planes().iter().map(|pl| be.encrypt_bits(pl)).collect();
        let thresh: Vec<MaybeEncrypted<ClearBackend>> = t
            .planes()
            .iter()
            .map(|pl| MaybeEncrypted::Encrypted(be.encrypt_bits(pl)))
            .collect();
        for (name, variant) in [
            ("ladder", SecCompVariant::LadderPrefix),
            ("shared", SecCompVariant::SharedPrefix),
        ] {
            group.bench_with_input(BenchmarkId::new(name, p), &p, |bench, _| {
                bench.iter(|| {
                    secure_less_than(&be, &feats, &thresh, variant, Parallelism::sequential())
                })
            });
        }
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    let be = ClearBackend::with_defaults();
    let mut rng = SmallRng::seed_from_u64(2);
    for n in [16usize, 64, 256] {
        let mut m = BoolMatrix::zeros(n, n);
        for r in 0..n {
            m.set(r, rng.gen_range(0..n), true);
        }
        let v = BitVec::from_fn(n, |_| rng.gen_bool(0.5));
        let ct = be.encrypt_bits(&v);
        let plain = EncodedMatrix::encode_plain(&be, &m);
        let enc = EncodedMatrix::encrypt(&be, &m);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bench, _| {
            bench.iter(|| {
                mat_vec(
                    &be,
                    &plain,
                    &ct,
                    MatMulOptions::default(),
                    Parallelism::sequential(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("encrypted", n), &n, |bench, _| {
            bench.iter(|| {
                mat_vec(
                    &be,
                    &enc,
                    &ct,
                    MatMulOptions::default(),
                    Parallelism::sequential(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("plain-skip-zero", n), &n, |bench, _| {
            bench.iter(|| {
                mat_vec(
                    &be,
                    &plain,
                    &ct,
                    MatMulOptions {
                        skip_zero_diagonals: true,
                        ..MatMulOptions::default()
                    },
                    Parallelism::sequential(),
                )
            })
        });
    }
    group.finish();
}

fn bench_accumulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulate");
    group.sample_size(20);
    let be = ClearBackend::with_defaults();
    for d in [4usize, 8, 16] {
        let factors: Vec<_> = (0..d)
            .map(|i| be.encrypt_bits(&BitVec::from_fn(128, |j| (i + j) % 3 != 0)))
            .collect();
        group.bench_with_input(BenchmarkId::new("balanced", d), &d, |bench, _| {
            bench.iter(|| balanced_product(&be, factors.clone()))
        });
    }
    group.finish();
}

fn bench_ring_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_mul");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(4);
    // Level-3 chains of 45-bit NTT-friendly primes; the same chain
    // feeds both paths, with the fast path toggled off for the oracle.
    for m in [127usize, 509] {
        let (ntt, school) = RnsContext::ntt_schoolbook_pair(m, 45, 3);
        let a = ntt.sample_uniform(3, &mut rng);
        let b = ntt.sample_uniform(3, &mut rng);
        group.bench_with_input(BenchmarkId::new("ntt", m), &m, |bench, _| {
            bench.iter(|| ntt.mul(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("schoolbook", m), &m, |bench, _| {
            bench.iter(|| school.mul(&a, &b))
        });
    }
    // The negacyclic power-of-two flavor at comparable dimensions:
    // ψ-twisted transforms of size exactly n (half the prime flavor's
    // next_pow2(2m - 1) padded length).
    for n in [128usize, 512] {
        let (nega, nega_school) = RnsContext::negacyclic_schoolbook_pair(n, 45, 3);
        let a = nega.sample_uniform(3, &mut rng);
        let b = nega.sample_uniform(3, &mut rng);
        group.bench_with_input(BenchmarkId::new("negacyclic", n), &n, |bench, _| {
            bench.iter(|| nega.mul(&a, &b))
        });
        group.bench_with_input(
            BenchmarkId::new("negacyclic_schoolbook", n),
            &n,
            |bench, _| bench.iter(|| nega_school.mul(&a, &b)),
        );
    }
    group.finish();
}

/// `rotate_slots` and the relinearisation key switch at demo
/// parameters: the cached evaluation-domain route (key parts
/// pre-transformed at keygen, one forward per digit row, two inverses
/// per output) against the per-call coefficient-domain baseline. Both
/// schemes share keys and an NTT-ready chain; only the key-switch
/// strategy differs.
fn bench_rotate_key_switch(c: &mut Criterion) {
    let eval = BgvScheme::keygen(BgvParams::demo());
    let mut coeff = BgvScheme::keygen(BgvParams::demo());
    coeff.set_eval_domain_enabled(false);
    let bits = BitVec::from_fn(eval.slots().nslots(), |i| i % 3 != 0);
    let ct = eval.encrypt_poly(&eval.slots().encode(&bits));

    let mut group = c.benchmark_group("rotate");
    group.sample_size(10);
    group.bench_function("eval-domain", |bench| {
        bench.iter(|| eval.rotate_slots(&ct, 1))
    });
    group.bench_function("coefficient", |bench| {
        bench.iter(|| coeff.rotate_slots(&ct, 1))
    });
    group.finish();

    let mut group = c.benchmark_group("key_switch");
    group.sample_size(10);
    group.bench_function("eval-domain", |bench| {
        bench.iter(|| eval.key_switch_relin(&ct))
    });
    group.bench_function("coefficient", |bench| {
        bench.iter(|| coeff.key_switch_relin(&ct))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_seccomp,
    bench_matmul,
    bench_accumulate,
    bench_ring_mul,
    bench_rotate_key_switch
);
criterion_main!(benches);
