//! Criterion ablation benches for the design choices DESIGN.md calls
//! out: reshuffle fusion, comparator variant, sparse plaintext
//! diagonals, accumulation strategy.

use copse_core::compiler::{Accumulation, CompileOptions};
use copse_core::matmul::MatMulOptions;
use copse_core::runtime::{Diane, EvalOptions, Maurice, ModelForm, Sally};
use copse_core::seccomp::SecCompVariant;
use copse_fhe::ClearBackend;
use copse_forest::microbench::{self, table6_specs};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let forest = microbench::generate(&table6_specs()[1], 2021); // depth5
    let query = &microbench::random_queries(&forest, 1, 7)[0];
    let be = ClearBackend::with_defaults();

    // Reshuffle fusion.
    for (name, fuse) in [("unfused", false), ("fused", true)] {
        let maurice = Maurice::compile(
            &forest,
            CompileOptions {
                fuse_reshuffle: fuse,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let diane = Diane::new(&be, maurice.public_query_info());
        let enc = diane.encrypt_features(query).unwrap();
        group.bench_function(format!("reshuffle/{name}"), |bench| {
            bench.iter(|| sally.classify(&enc))
        });
    }

    // Comparator variant.
    let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
    let diane = Diane::new(&be, maurice.public_query_info());
    let enc = diane.encrypt_features(query).unwrap();
    for (name, comparator) in [
        ("ladder", SecCompVariant::LadderPrefix),
        ("shared", SecCompVariant::SharedPrefix),
    ] {
        let sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Encrypted),
            EvalOptions {
                comparator,
                ..EvalOptions::default()
            },
        );
        group.bench_function(format!("comparator/{name}"), |bench| {
            bench.iter(|| sally.classify(&enc))
        });
    }

    // Sparse plaintext diagonals (plaintext-model deployments only).
    for (name, skip) in [("dense", false), ("skip-zero", true)] {
        let sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Plain),
            EvalOptions {
                matmul: MatMulOptions {
                    skip_zero_diagonals: skip,
                    ..MatMulOptions::default()
                },
                ..EvalOptions::default()
            },
        );
        group.bench_function(format!("plain-diagonals/{name}"), |bench| {
            bench.iter(|| sally.classify(&enc))
        });
    }

    // Accumulation strategy (work identical; depth differs - timing
    // equal on the clear backend, tracked for completeness).
    for (name, acc) in [
        ("balanced", Accumulation::BalancedTree),
        ("linear", Accumulation::Linear),
    ] {
        let maurice = Maurice::compile(
            &forest,
            CompileOptions {
                accumulation: acc,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        group.bench_function(format!("accumulation/{name}"), |bench| {
            bench.iter(|| sally.classify(&enc))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
