//! Criterion end-to-end benches: COPSE vs the Aloufi et al. baseline
//! on representative models (the Figure 6/8 comparison as a tracked
//! benchmark), plus plaintext-vs-encrypted deployment (Figure 9).

use copse_baseline as baseline;
use copse_core::compiler::CompileOptions;
use copse_core::parallel::Parallelism;
use copse_core::runtime::{Diane, EvalOptions, Maurice, ModelForm, Sally};
use copse_fhe::ClearBackend;
use copse_forest::microbench::{self, table6_specs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_copse_vs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("copse-vs-baseline");
    group.sample_size(10);
    for spec in [&table6_specs()[1], &table6_specs()[5]] {
        // depth5 and width677
        let forest = microbench::generate(spec, 2021);
        let query = &microbench::random_queries(&forest, 1, 7)[0];
        let be = ClearBackend::with_defaults();

        let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
        let sally = Sally::host(&be, maurice.deploy(&be, ModelForm::Encrypted));
        let diane = Diane::new(&be, maurice.public_query_info());
        let enc = diane.encrypt_features(query).unwrap();
        group.bench_with_input(BenchmarkId::new("copse", spec.name), spec, |bench, _| {
            bench.iter(|| sally.classify(&enc))
        });

        let bl = baseline::BaselineModel::compile(&forest).deploy(&be, ModelForm::Encrypted);
        let bq = baseline::encrypt_query(&be, &bl, query);
        group.bench_with_input(BenchmarkId::new("baseline", spec.name), spec, |bench, _| {
            bench.iter(|| baseline::classify(&be, &bl, &bq, Parallelism::sequential()))
        });
    }
    group.finish();
}

fn bench_model_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("model-form");
    group.sample_size(10);
    let forest = microbench::generate(&table6_specs()[1], 2021);
    let query = &microbench::random_queries(&forest, 1, 7)[0];
    let be = ClearBackend::with_defaults();
    let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
    let diane = Diane::new(&be, maurice.public_query_info());
    let enc = diane.encrypt_features(query).unwrap();
    for form in [ModelForm::Plain, ModelForm::Encrypted] {
        let sally = Sally::host(&be, maurice.deploy(&be, form));
        group.bench_function(format!("{form:?}"), |bench| {
            bench.iter(|| sally.classify(&enc))
        });
    }
    group.finish();
}

fn bench_threading(c: &mut Criterion) {
    let mut group = c.benchmark_group("threading");
    group.sample_size(10);
    // A larger model so threads have work (soccer-sized synthetic).
    let forest = copse_forest::zoo::realworld_model("soccer", 5, 2021).forest;
    let query = &microbench::random_queries(&forest, 1, 7)[0];
    let be = copse_bench::bench_backend(copse_bench::WORK_PER_OP);
    let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
    let diane = Diane::new(&be, maurice.public_query_info());
    let enc = diane.encrypt_features(query).unwrap();
    for threads in [1usize, 4, 8] {
        let sally = Sally::with_options(
            &be,
            maurice.deploy(&be, ModelForm::Encrypted),
            EvalOptions {
                parallelism: Parallelism { threads },
                ..EvalOptions::default()
            },
        );
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, _| bench.iter(|| sally.classify(&enc)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_copse_vs_baseline,
    bench_model_forms,
    bench_threading
);
criterion_main!(benches);
