//! # copse-bench — the evaluation harness
//!
//! Reproduces every table and figure of the paper's evaluation
//! (§8). One binary per exhibit (see DESIGN.md's experiment index);
//! this library holds the shared measurement machinery:
//!
//! * [`measure_copse`] / [`measure_baseline`] — run `n` inference
//!   queries against a model on a fresh [`ClearBackend`] and report the
//!   **median wall-clock**, the metered operation counts, and the
//!   **modeled FHE milliseconds** (counts x calibrated BGV latencies).
//!   Wall-clock uses `work_per_op` so time tracks operation counts the
//!   way lattice time would, rather than logical slot widths.
//! * [`geomean`], [`BarTable`] — the paper's aggregation and a plain
//!   text bar renderer for figure-style output.
//!
//! The paper reports medians over 27 queries per model; the harness
//! defaults match ([`QUERIES_PER_MODEL`]).

#![warn(missing_docs)]

pub mod reports;

use copse_baseline as baseline;
use copse_core::compiler::CompileOptions;
use copse_core::parallel::Parallelism;
use copse_core::runtime::{Diane, EvalOptions, EvalTrace, Maurice, ModelForm, Sally};
use copse_fhe::{ClearBackend, ClearConfig, CostModel, FheBackend, OpCounts};
use copse_forest::microbench::random_queries;
use copse_forest::model::Forest;
use std::time::Duration;

use copse_trace::Stopwatch;

/// Queries per model, as in the paper ("we performed 27 inference
/// queries ... We report the median running time").
pub const QUERIES_PER_MODEL: usize = 27;

/// Synthetic per-op work for wall-clock fidelity (see
/// `ClearConfig::work_per_op`): roughly 10 microseconds per operation
/// on a typical core — still far below a real BGV multiply (~400 us)
/// but enough that threading measurements reflect work distribution
/// rather than spawn overhead.
pub const WORK_PER_OP: usize = 25_000;

/// Deterministic seed for the benchmark suite.
pub const SUITE_SEED: u64 = 2021;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Configuration label.
    pub name: String,
    /// Median wall-clock per query.
    pub median_wall: Duration,
    /// Operation counts for a single (first) query.
    pub ops_per_query: OpCounts,
    /// Modeled FHE milliseconds per query (sequential).
    pub modeled_ms: f64,
}

impl Measurement {
    /// Median wall-clock in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.median_wall.as_secs_f64() * 1e3
    }
}

/// Builds the standard benchmark backend.
pub fn bench_backend(work_per_op: usize) -> ClearBackend {
    ClearBackend::new(ClearConfig {
        work_per_op,
        ..ClearConfig::default()
    })
}

/// Median of a set of durations.
pub fn median(mut xs: Vec<Duration>) -> Duration {
    assert!(!xs.is_empty(), "median of empty sample");
    xs.sort();
    xs[xs.len() / 2]
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty sample");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Measures COPSE on a forest: `n_queries` classifications, median
/// wall-clock + per-query ops + modeled time.
pub fn measure_copse(
    name: &str,
    forest: &Forest,
    form: ModelForm,
    threads: usize,
    n_queries: usize,
    work_per_op: usize,
) -> Measurement {
    let backend = bench_backend(work_per_op);
    let maurice =
        Maurice::compile(forest, CompileOptions::default()).expect("benchmark model compiles");
    let sally = Sally::with_options(
        &backend,
        maurice.deploy(&backend, form),
        EvalOptions {
            parallelism: Parallelism { threads },
            ..EvalOptions::default()
        },
    );
    let diane = Diane::new(&backend, maurice.public_query_info());
    let queries = random_queries(forest, n_queries, SUITE_SEED ^ 0xF00D);

    let mut ops_per_query = OpCounts::default();
    let mut times = Vec::with_capacity(n_queries);
    for (i, q) in queries.iter().enumerate() {
        let query = diane.encrypt_features(q).expect("valid query");
        let before = backend.meter().snapshot();
        let start = Stopwatch::start();
        let result = sally.classify(&query);
        times.push(start.elapsed());
        if i == 0 {
            ops_per_query = backend.meter().snapshot().since(&before);
        }
        // Keep the oracle honest even while benchmarking.
        debug_assert_eq!(
            diane.decrypt_result(&result).leaf_hits().to_bools(),
            forest.classify_leaf_hits(q)
        );
        let _ = result;
    }
    Measurement {
        name: name.to_string(),
        median_wall: median(times),
        ops_per_query,
        modeled_ms: CostModel::default().modeled_ms(&ops_per_query),
    }
}

/// Measures COPSE and returns the per-stage trace of the first query
/// alongside the measurement (Figure 10).
pub fn measure_copse_traced(
    name: &str,
    forest: &Forest,
    form: ModelForm,
    threads: usize,
    n_queries: usize,
    work_per_op: usize,
) -> (Measurement, EvalTrace) {
    let backend = bench_backend(work_per_op);
    let maurice =
        Maurice::compile(forest, CompileOptions::default()).expect("benchmark model compiles");
    let sally = Sally::with_options(
        &backend,
        maurice.deploy(&backend, form),
        EvalOptions {
            parallelism: Parallelism { threads },
            ..EvalOptions::default()
        },
    );
    let diane = Diane::new(&backend, maurice.public_query_info());
    let queries = random_queries(forest, n_queries, SUITE_SEED ^ 0xF00D);

    let mut times = Vec::with_capacity(n_queries);
    let mut first: Option<(OpCounts, EvalTrace)> = None;
    for q in &queries {
        let query = diane.encrypt_features(q).expect("valid query");
        let before = backend.meter().snapshot();
        let start = Stopwatch::start();
        let (_, trace) = sally.classify_traced(&query);
        times.push(start.elapsed());
        if first.is_none() {
            first = Some((backend.meter().snapshot().since(&before), trace));
        }
    }
    let (ops_per_query, trace) = first.expect("at least one query");
    (
        Measurement {
            name: name.to_string(),
            median_wall: median(times),
            ops_per_query,
            modeled_ms: CostModel::default().modeled_ms(&ops_per_query),
        },
        trace,
    )
}

/// Measures the Aloufi et al. baseline on a forest.
pub fn measure_baseline(
    name: &str,
    forest: &Forest,
    form: ModelForm,
    threads: usize,
    n_queries: usize,
    work_per_op: usize,
) -> Measurement {
    let backend = bench_backend(work_per_op);
    let model = baseline::BaselineModel::compile(forest);
    let deployed = model.deploy(&backend, form);
    let queries = random_queries(forest, n_queries, SUITE_SEED ^ 0xF00D);

    let mut ops_per_query = OpCounts::default();
    let mut times = Vec::with_capacity(n_queries);
    for (i, q) in queries.iter().enumerate() {
        let query = baseline::encrypt_query(&backend, &deployed, q);
        let before = backend.meter().snapshot();
        let start = Stopwatch::start();
        let result = baseline::classify(&backend, &deployed, &query, Parallelism { threads });
        times.push(start.elapsed());
        if i == 0 {
            ops_per_query = backend.meter().snapshot().since(&before);
        }
        debug_assert_eq!(
            baseline::decrypt_labels(&backend, &deployed, &result),
            forest.classify_per_tree(q)
        );
        let _ = result;
    }
    Measurement {
        name: name.to_string(),
        median_wall: median(times),
        ops_per_query,
        modeled_ms: CostModel::default().modeled_ms(&ops_per_query),
    }
}

/// Plain-text rendering of a figure: one bar per model with the value
/// annotated, the way the paper annotates median times atop its bars.
#[derive(Clone, Debug, Default)]
pub struct BarTable {
    rows: Vec<(String, f64, String)>,
}

impl BarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a bar with an annotation.
    pub fn push(&mut self, name: &str, value: f64, annotation: String) {
        self.rows.push((name.to_string(), value, annotation));
    }

    /// Renders with unit-scaled bars.
    pub fn render(&self, value_label: &str) -> String {
        let max = self.rows.iter().map(|r| r.1).fold(f64::EPSILON, f64::max);
        let mut out = format!("{:<12} {:>8}  bar (annotation)\n", "model", value_label);
        for (name, value, annotation) in &self.rows {
            let width = ((value / max) * 40.0).round() as usize;
            out.push_str(&format!(
                "{:<12} {:>8.2}  {} ({})\n",
                name,
                value,
                "#".repeat(width.max(1)),
                annotation
            ));
        }
        out
    }
}

/// Simple `--flag value` argument helper for the harness binaries.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Number of queries requested via `--queries`, defaulting to the
/// paper's 27.
pub fn queries_from_args() -> usize {
    arg_value("--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(QUERIES_PER_MODEL)
}

/// Threads requested via `--threads`, defaulting to the paper's 32
/// (capped by the host).
pub fn threads_from_args() -> usize {
    arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(32)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_forest::microbench::{self, table6_specs};

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        let ms = |n: u64| Duration::from_millis(n);
        assert_eq!(median(vec![ms(3), ms(1), ms(2)]), ms(2));
        assert_eq!(median(vec![ms(4), ms(1), ms(2), ms(3)]), ms(3));
    }

    #[test]
    fn copse_beats_baseline_on_modeled_time() {
        // The headline claim of the paper, in miniature.
        let forest = microbench::generate(&table6_specs()[1], SUITE_SEED);
        let copse = measure_copse("depth5", &forest, ModelForm::Encrypted, 1, 3, 0);
        let base = measure_baseline("depth5", &forest, ModelForm::Encrypted, 1, 3, 0);
        assert!(
            base.modeled_ms > 1.5 * copse.modeled_ms,
            "baseline {:.1}ms vs copse {:.1}ms",
            base.modeled_ms,
            copse.modeled_ms
        );
    }

    #[test]
    fn bar_table_renders_annotations() {
        let mut t = BarTable::new();
        t.push("a", 2.0, "x".into());
        t.push("b", 4.0, "y".into());
        let s = t.render("speedup");
        assert!(s.contains("(x)") && s.contains("(y)"));
    }
}
