//! Report generators: one function per table/figure of the paper.
//!
//! Each function runs the corresponding experiment and renders a
//! plain-text exhibit with the same rows/series the paper reports. The
//! `reproduce_all` binary stitches them into an EXPERIMENTS.md-ready
//! document; the per-exhibit binaries print them individually.

use crate::{
    geomean, measure_baseline, measure_copse, measure_copse_traced, BarTable, Measurement,
};
use copse_core::compiler::{compile, Accumulation, CompileOptions};
use copse_core::complexity::{self, CostInputs};
use copse_core::leakage::{render_table, Scenario};
use copse_core::runtime::ModelForm;
use copse_fhe::{CostModel, EncryptionParams, SecurityLevel};
use copse_forest::microbench::table6_specs;
use copse_forest::zoo::{self, BenchModel, ModelGroup};
use std::fmt::Write as _;

/// Runs the full 12-model suite once.
fn suite(seed: u64) -> Vec<BenchModel> {
    zoo::paper_suite(seed)
}

fn speedup_section(
    title: &str,
    rows: &[(String, ModelGroup, f64, String)],
    reference: &str,
) -> String {
    let mut bars = BarTable::new();
    for (name, _, speedup, annotation) in rows {
        bars.push(name, *speedup, annotation.clone());
    }
    let micro: Vec<f64> = rows
        .iter()
        .filter(|r| r.1 == ModelGroup::Micro)
        .map(|r| r.2)
        .collect();
    let real: Vec<f64> = rows
        .iter()
        .filter(|r| r.1 == ModelGroup::RealWorld)
        .map(|r| r.2)
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = writeln!(out);
    out.push_str(&bars.render("speedup"));
    let _ = writeln!(out);
    let _ = writeln!(out, "geomean (micro-bench):  {:.2}x", geomean(&micro));
    let _ = writeln!(out, "geomean (real-world):   {:.2}x", geomean(&real));
    let _ = writeln!(out, "paper reference: {reference}");
    out
}

/// Figure 6: single-threaded COPSE vs the Aloufi et al. baseline.
pub fn figure6(seed: u64, n_queries: usize, work: usize) -> String {
    let rows: Vec<(String, ModelGroup, f64, String)> = suite(seed)
        .iter()
        .map(|m| {
            let copse = measure_copse(&m.name, &m.forest, ModelForm::Encrypted, 1, n_queries, work);
            let base =
                measure_baseline(&m.name, &m.forest, ModelForm::Encrypted, 1, n_queries, work);
            let speedup = base.modeled_ms / copse.modeled_ms;
            (
                m.name.clone(),
                m.group,
                speedup,
                format!(
                    "COPSE {:.1} ms modeled / {:.1} ms wall; baseline {:.1} ms modeled",
                    copse.modeled_ms,
                    copse.wall_ms(),
                    base.modeled_ms
                ),
            )
        })
        .collect();
    speedup_section(
        "Figure 6: speedup over Aloufi et al., both single-threaded",
        &rows,
        "5x to >7x per model, geomean close to 6x",
    )
}

/// Figure 7: multithreaded COPSE vs single-threaded COPSE.
pub fn figure7(seed: u64, n_queries: usize, threads: usize, work: usize) -> String {
    let rows: Vec<(String, ModelGroup, f64, String)> = suite(seed)
        .iter()
        .map(|m| {
            let seq = measure_copse(&m.name, &m.forest, ModelForm::Encrypted, 1, n_queries, work);
            let par = measure_copse(
                &m.name,
                &m.forest,
                ModelForm::Encrypted,
                threads,
                n_queries,
                work,
            );
            let speedup = seq.wall_ms() / par.wall_ms();
            (
                m.name.clone(),
                m.group,
                speedup,
                format!("{:.1} ms multithreaded wall", par.wall_ms()),
            )
        })
        .collect();
    speedup_section(
        &format!("Figure 7: COPSE multithreaded ({threads} threads) vs single-threaded"),
        &rows,
        &format!(
            "about 2.5x on microbenchmarks, almost 5x on real-world models \
             (paper host: 32 cores; this host: {} cores, capping speedup at {})",
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        ),
    )
}

/// Figure 8: COPSE vs baseline, both multithreaded.
pub fn figure8(seed: u64, n_queries: usize, threads: usize, work: usize) -> String {
    let rows: Vec<(String, ModelGroup, f64, String)> = suite(seed)
        .iter()
        .map(|m| {
            let copse = measure_copse(
                &m.name,
                &m.forest,
                ModelForm::Encrypted,
                threads,
                n_queries,
                work,
            );
            let base = measure_baseline(
                &m.name,
                &m.forest,
                ModelForm::Encrypted,
                threads,
                n_queries,
                work,
            );
            let speedup = base.wall_ms() / copse.wall_ms();
            (
                m.name.clone(),
                m.group,
                speedup,
                format!("COPSE {:.1} ms wall", copse.wall_ms()),
            )
        })
        .collect();
    speedup_section(
        &format!("Figure 8: speedup over Aloufi et al., both multithreaded ({threads} threads)"),
        &rows,
        "smaller than Figure 6 (packing already consumed parallelism); gap narrows on larger models",
    )
}

/// Figure 9: plaintext models (Maurice = Sally) vs encrypted models
/// (Diane = Maurice).
pub fn figure9(seed: u64, n_queries: usize, work: usize) -> String {
    let rows: Vec<(String, ModelGroup, f64, String)> = suite(seed)
        .iter()
        .map(|m| {
            let enc = measure_copse(&m.name, &m.forest, ModelForm::Encrypted, 1, n_queries, work);
            let plain = measure_copse(&m.name, &m.forest, ModelForm::Plain, 1, n_queries, work);
            let speedup = enc.modeled_ms / plain.modeled_ms;
            (
                m.name.clone(),
                m.group,
                speedup,
                format!("plaintext-model {:.1} ms modeled", plain.modeled_ms),
            )
        })
        .collect();
    speedup_section(
        "Figure 9: plaintext models (M = S) vs encrypted models (M = D)",
        &rows,
        "roughly 1.4x across the suite",
    )
}

/// Figure 10: per-stage runtime breakdowns across depth, branching and
/// precision sweeps.
pub fn figure10(seed: u64, n_queries: usize, work: usize) -> String {
    let groups: [(&str, &[&str], &str); 3] = [
        (
            "Figure 10a: run time vs max depth",
            &["depth4", "depth5", "depth6"],
            "comparison/reshuffle flat; level processing grows linearly with depth",
        ),
        (
            "Figure 10b: run time vs branches",
            &["width55", "width78", "width677"],
            "comparison flat; reshuffle and level processing grow with branching",
        ),
        (
            "Figure 10c: run time vs precision",
            &["prec8", "prec16"],
            "comparison grows superlinearly with precision; the rest flat",
        ),
    ];
    let suite = suite(seed);
    let model = CostModel::default();
    let mut out = String::new();
    for (title, names, shape) in groups {
        let _ = writeln!(out, "## {title}");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "model", "compare_ms", "reshuffle_ms", "levels_ms", "accum_ms", "total_ms"
        );
        for &name in names {
            let m = suite
                .iter()
                .find(|m| m.name == name)
                .expect("model in suite");
            let (_, trace) = measure_copse_traced(
                name,
                &m.forest,
                ModelForm::Encrypted,
                1,
                n_queries.min(5),
                work,
            );
            let stage = |ops| model.modeled_ms(ops);
            let _ = writeln!(
                out,
                "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>10.2}",
                name,
                stage(&trace.comparison.ops),
                stage(&trace.reshuffle.ops),
                stage(&trace.levels.ops),
                stage(&trace.accumulate.ops),
                stage(&trace.total_ops()),
            );
        }
        let _ = writeln!(out, "expected shape: {shape}");
        let _ = writeln!(out);
    }
    out
}

/// Tables 1 and 2: operation counts and multiplicative depth, formulas
/// vs metered execution.
pub fn table1_2(seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Tables 1-2: circuit complexity (formulas vs paper)");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "quantity", "ours", "paper", "ours", "paper", ""
    );
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "", "(p=8)", "(p=8)", "(p=16)", "(p=16)", ""
    );
    for (label, f_ours, f_paper) in [
        (
            "SecComp multiplies",
            Box::new(|p: u32| {
                complexity::ours::seccomp_counts(p, ModelForm::Encrypted, Default::default())
                    .multiplies_combined()
            }) as Box<dyn Fn(u32) -> u64>,
            Box::new(|p: u32| complexity::paper::seccomp_counts(p).multiply)
                as Box<dyn Fn(u32) -> u64>,
        ),
        (
            "SecComp adds",
            Box::new(|p| {
                complexity::ours::seccomp_counts(p, ModelForm::Encrypted, Default::default()).add
            }),
            Box::new(|p| complexity::paper::seccomp_counts(p).add),
        ),
        (
            "SecComp depth",
            Box::new(|p| u64::from(complexity::ours::seccomp_depth(p, Default::default()))),
            Box::new(|p| u64::from(complexity::paper::seccomp_depth(p))),
        ),
    ] {
        let _ = writeln!(
            out,
            "{:<26} {:>8} {:>8} {:>10} {:>10}",
            label,
            f_ours(8),
            f_paper(8),
            f_ours(16),
            f_paper(16),
        );
    }
    let _ = writeln!(out);

    // Table 2 instantiated on the depth5 microbenchmark, verified
    // against a metered run.
    let spec = table6_specs()[1];
    let forest = copse_forest::microbench::generate(&spec, seed);
    let compiled = compile(&forest, CompileOptions::default()).expect("compiles");
    let meta = &compiled.meta;
    let inputs = CostInputs::from_meta(
        meta,
        ModelForm::Encrypted,
        false,
        Accumulation::BalancedTree,
    );
    let ours = complexity::ours::classify_counts(&inputs);
    let paper = complexity::paper::total_counts(
        meta.precision,
        meta.quantized,
        meta.branches,
        meta.max_level,
    );
    let measured = measure_copse("depth5", &forest, ModelForm::Encrypted, 1, 1, 0).ops_per_query;
    let _ = writeln!(
        out,
        "Table 2 instantiated on depth5 (p={}, q={}, b={}, d={}):",
        meta.precision, meta.quantized, meta.branches, meta.max_level
    );
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>10}",
        "operation", "measured", "ours", "paper"
    );
    for (label, m, o, p) in [
        ("Rotate", measured.rotate, ours.rotate, paper.rotate),
        ("Add", measured.add, ours.add, paper.add),
        (
            "Constant Add",
            measured.constant_add,
            ours.constant_add,
            paper.constant_add,
        ),
        (
            "Multiply",
            measured.multiplies_combined(),
            ours.multiplies_combined(),
            paper.multiply,
        ),
    ] {
        let _ = writeln!(out, "{label:<16} {m:>10} {o:>10} {p:>10}");
    }
    let verified = measured == ours;
    let _ = writeln!(
        out,
        "measured == our formulas: {}",
        if verified { "VERIFIED" } else { "MISMATCH" }
    );
    let _ = writeln!(
        out,
        "depth: measured-model {} (paper bound {})",
        complexity::ours::classify_depth(&inputs),
        complexity::paper::total_depth(meta.precision, meta.max_level)
    );
    out
}

/// Tables 3 and 4: leakage profiles.
pub fn table3_4() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Table 3: two-party leakage");
    let _ = writeln!(out);
    out.push_str(&render_table(&[
        Scenario::OffloadedCompute,
        Scenario::ServerOwnsModel,
        Scenario::ClientEvaluates,
    ]));
    let _ = writeln!(out);
    let _ = writeln!(out, "## Table 4: three-party leakage");
    let _ = writeln!(out);
    out.push_str(&render_table(&[
        Scenario::ThreeParty,
        Scenario::ThreePartyServerModelCollusion,
        Scenario::ThreePartyServerDataCollusion,
    ]));
    out
}

/// Table 5: encryption parameter sweep.
pub fn table5(seed: u64) -> String {
    // Requirement: support the deepest circuit in the micro suite,
    // using the paper's depth bound 2 log p + log d + 2.
    let required_depth = table6_specs()
        .iter()
        .map(|s| complexity::paper::total_depth(s.precision, s.max_depth))
        .max()
        .expect("specs nonempty");
    // Workload for scoring: the depth5 microbenchmark op counts.
    let forest = copse_forest::microbench::generate(&table6_specs()[1], seed);
    let compiled = compile(&forest, CompileOptions::default()).expect("compiles");
    let inputs = CostInputs::from_meta(
        &compiled.meta,
        ModelForm::Encrypted,
        false,
        Accumulation::BalancedTree,
    );
    let ops = complexity::ours::classify_counts(&inputs);
    let max_width = compiled.meta.quantized.max(compiled.meta.n_leaves);

    let mut out = String::new();
    let _ = writeln!(out, "## Table 5: encryption parameter sweep");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "requirement: depth >= {required_depth} (prec16 circuit), slots >= {max_width}, security >= 128"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>8} {:>7} {:>7} {:>12} {:>10}",
        "security", "bits", "columns", "depth", "slots", "modeled_ms", "verdict"
    );

    let mut best: Option<(f64, EncryptionParams)> = None;
    for params in EncryptionParams::sweep_grid() {
        let depth = params.depth_budget();
        let slots = params.slot_capacity();
        let modeled = params.cost_model().modeled_ms(&ops);
        let feasible = depth >= required_depth
            && slots >= max_width
            && params.security.bits() >= SecurityLevel::Bits128.bits();
        let verdict = if !feasible {
            if params.security.bits() < 128 {
                "insecure"
            } else if depth < required_depth {
                "too shallow"
            } else {
                "too narrow"
            }
        } else {
            if best.as_ref().is_none_or(|(t, _)| modeled < *t) {
                best = Some((modeled, params));
            }
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>8} {:>7} {:>7} {:>12.1} {:>10}",
            params.security.bits(),
            params.modulus_bits,
            params.ks_columns,
            depth,
            slots,
            modeled,
            verdict
        );
    }
    let (_, winner) = best.expect("some feasible configuration");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "optimal: security={} bits={} columns={}",
        winner.security.bits(),
        winner.modulus_bits,
        winner.ks_columns
    );
    let _ = writeln!(out, "paper Table 5: security=128 bits=400 columns=3");
    out
}

/// Table 6: microbenchmark specifications plus realised shapes.
pub fn table6(seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Table 6: microbenchmark specifications");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>7} {:>9} | realised: {:>4} {:>4} {:>4} {:>7}",
        "model", "max_depth", "precision", "trees", "branches", "b", "q", "K", "leaves"
    );
    for spec in table6_specs() {
        let forest = copse_forest::microbench::generate(&spec, seed);
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>7} {:>9} | {:>14} {:>4} {:>4} {:>7}",
            spec.name,
            spec.max_depth,
            spec.precision,
            spec.n_trees,
            spec.branches,
            forest.branch_count(),
            forest.quantized_branching(),
            forest.max_multiplicity(),
            forest.leaf_count(),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "real-world models (trained on synthetic stand-ins):");
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>7}",
        "model", "trees", "b", "q", "d", "leaves"
    );
    for m in zoo::realworld_suite(seed) {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>6} {:>6} {:>6} {:>7}",
            m.name,
            m.forest.trees().len(),
            m.forest.branch_count(),
            m.forest.quantized_branching(),
            m.forest.max_level(),
            m.forest.leaf_count(),
        );
    }
    out
}

/// Ring-multiplication kernel: the BGV backend's NTT fast path vs the
/// schoolbook fallback on identical level-3 RNS chains of 45-bit
/// NTT-friendly primes. This is the innermost kernel of every
/// homomorphic operation (mat-vec, key switching, automorphisms), so
/// its speedup propagates through every server-side batch.
pub fn ring_mul() -> String {
    use copse_fhe::bgv::ring::RnsContext;
    use copse_trace::Stopwatch;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ring-mul kernel: NTT vs schoolbook (level-3 chain, 45-bit primes)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>12} {:>15} {:>9}",
        "m", "ntt_size", "ntt_ms", "schoolbook_ms", "speedup"
    );
    let mut rng = SmallRng::seed_from_u64(0x517);
    for m in [127usize, 257, 509] {
        let (ntt, school) = RnsContext::ntt_schoolbook_pair(m, 45, 3);
        let a = ntt.sample_uniform(3, &mut rng);
        let b = ntt.sample_uniform(3, &mut rng);
        let time_ms = |ctx: &RnsContext| -> f64 {
            let times: Vec<_> = (0..7)
                .map(|_| {
                    let start = Stopwatch::start();
                    let _ = std::hint::black_box(ctx.mul(&a, &b));
                    start.elapsed()
                })
                .collect();
            crate::median(times).as_secs_f64() * 1e3
        };
        let fast = time_ms(&ntt);
        let slow = time_ms(&school);
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>12.3} {:>15.3} {:>8.1}x",
            m,
            RnsContext::ntt_size(m),
            fast,
            slow,
            slow / fast
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "expected shape: O(phi^2) vs O(n log n) — the gap widens with m; >= 5x at m = 509"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "negacyclic power-of-two flavor (psi-twisted size-n transforms, no padding):"
    );
    let _ = writeln!(
        out,
        "{:<6} {:>9} {:>12} {:>15} {:>9}",
        "n", "ntt_size", "ntt_ms", "schoolbook_ms", "speedup"
    );
    for n in [128usize, 256, 512] {
        let (ntt, school) = RnsContext::negacyclic_schoolbook_pair(n, 45, 3);
        let a = ntt.sample_uniform(3, &mut rng);
        let b = ntt.sample_uniform(3, &mut rng);
        let time_ms = |ctx: &RnsContext| -> f64 {
            let times: Vec<_> = (0..7)
                .map(|_| {
                    let start = Stopwatch::start();
                    let _ = std::hint::black_box(ctx.mul(&a, &b));
                    start.elapsed()
                })
                .collect();
            crate::median(times).as_secs_f64() * 1e3
        };
        let fast = time_ms(&ntt);
        let slow = time_ms(&school);
        let _ = writeln!(
            out,
            "{:<6} {:>9} {:>12.3} {:>15.3} {:>8.1}x",
            n,
            ntt.transform_size(),
            fast,
            slow,
            slow / fast
        );
    }
    let _ = writeln!(
        out,
        "transform size is exactly n — half the prime flavor's next_pow2(2m - 1) at\n\
         comparable ring dimension (128 vs 256 against m = 127)"
    );
    out
}

/// Medians and transform counts for the hot BGV kernels at demo
/// parameters, shared by the [`rotate_keyswitch`] exhibit and the
/// machine-readable `BENCH_kernels.json` (the cross-PR perf
/// trajectory). Since the `copse-pool` runtime landed, every kernel
/// carries a **threads dimension**: the `*_par_ms` medians rerun the
/// same kernel forked [`KernelMedians::threads`]-ways onto the shared
/// worker pool (bitwise-identical results; only wall-clock moves), and
/// [`KernelMedians::host_cores`] records how much hardware the numbers
/// were taken on — a 4-thread median on a 1-core container cannot
/// beat its own baseline, and readers need to see that.
#[derive(Clone, Copy, Debug)]
pub struct KernelMedians {
    /// `RnsContext::mul`, NTT fast path (m = 127, level-3 chain).
    pub ring_mul_ntt_ms: f64,
    /// `RnsContext::mul`, schoolbook oracle.
    pub ring_mul_school_ms: f64,
    /// `RnsContext::mul` on the negacyclic power-of-two ring at
    /// comparable dimension (n = 128 vs φ(127) = 126, level-3 chain):
    /// `ψ`-twisted transforms of size exactly `n` — half the prime
    /// flavor's zero-padded length.
    pub ring_mul_nega_ms: f64,
    /// Per-prime transform length of the prime-cyclotomic `ring_mul`
    /// point (`next_pow2(2m - 1)`).
    pub ring_mul_cyclic_size: usize,
    /// Per-prime transform length of the negacyclic `ring_mul` point
    /// (exactly `n`).
    pub ring_mul_nega_size: usize,
    /// `rotate_slots` with cached evaluation-domain key switching.
    pub rotate_eval_ms: f64,
    /// `rotate_slots` on the per-call coefficient route (PR 2).
    pub rotate_coeff_ms: f64,
    /// `rotate_slots`, evaluation-domain, forked `threads`-ways.
    pub rotate_par_ms: f64,
    /// One relinearisation key switch, evaluation-domain.
    pub key_switch_eval_ms: f64,
    /// One relinearisation key switch, coefficient-domain.
    pub key_switch_coeff_ms: f64,
    /// One relinearisation key switch, forked `threads`-ways.
    pub key_switch_par_ms: f64,
    /// Full Halevi–Shoup `mat_vec` over a plaintext model on real BGV
    /// (cached diagonal transforms), single-threaded.
    pub mat_vec_ms: f64,
    /// The same `mat_vec`, stage- and kernel-parallel `threads`-ways.
    pub mat_vec_par_ms: f64,
    /// Parallel degree the `*_par_ms` medians forked to.
    pub threads: usize,
    /// Cores the host advertised while measuring.
    pub host_cores: usize,
    /// NTT transforms per evaluation-domain rotate.
    pub rotate_eval_transforms: u64,
    /// NTT transforms per coefficient-domain rotate.
    pub rotate_coeff_transforms: u64,
}

/// Measures the kernel quartet (`ring_mul`, `rotate`, `key_switch`,
/// `mat_vec`) at demo parameters, `reps` samples per point, with the
/// parallel variants forked `threads`-ways onto the shared pool.
pub fn measure_kernels(reps: usize, threads: usize) -> KernelMedians {
    use copse_core::artifacts::BoolMatrix;
    use copse_core::matmul::{mat_vec, EncodedMatrix, MatMulOptions};
    use copse_core::parallel::Parallelism;
    use copse_fhe::bgv::ring::RnsContext;
    use copse_fhe::bgv::scheme::{BgvParams, BgvScheme};
    use copse_fhe::{transform_snapshot, BgvBackend, BitVec, FheBackend};
    use copse_trace::Stopwatch;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let reps = reps.max(1);
    let median_ms = |mut f: Box<dyn FnMut()>| -> f64 {
        let times: Vec<_> = (0..reps)
            .map(|_| {
                let start = Stopwatch::start();
                f();
                start.elapsed()
            })
            .collect();
        crate::median(times).as_secs_f64() * 1e3
    };

    // Ring multiplication, m = 127 over a level-3 chain of 45-bit
    // primes (the PR 2 exhibit's smaller point, CI-friendly).
    let mut rng = SmallRng::seed_from_u64(0x517);
    let (ntt, school) = RnsContext::ntt_schoolbook_pair(127, 45, 3);
    let a = ntt.sample_uniform(3, &mut rng);
    let b = ntt.sample_uniform(3, &mut rng);
    let ring_mul_ntt_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(ntt.mul(&a, &b));
    }));
    let ring_mul_school_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(school.mul(&a, &b));
    }));

    // Negacyclic power-of-two ring at comparable dimension: n = 128
    // (ring Z_q[X]/(X^128 + 1)) vs φ(127) = 126 above. Same chain
    // shape (level-3, 45-bit primes with 2n | q - 1); the ψ-twisted
    // transforms run at size exactly n = 128, half the prime flavor's
    // next_pow2(2·127 − 1) = 256.
    let (nega, _) = RnsContext::negacyclic_schoolbook_pair(128, 45, 3);
    let ring_mul_cyclic_size = ntt.transform_size();
    let ring_mul_nega_size = nega.transform_size();
    let na = nega.sample_uniform(3, &mut rng);
    let nb = nega.sample_uniform(3, &mut rng);
    let ring_mul_nega_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(nega.mul(&na, &nb));
    }));

    // Rotate and key switch at demo parameters, evaluation-domain vs
    // the per-call coefficient route (same keys, NTT on for both).
    let eval = BgvScheme::keygen(BgvParams::demo());
    let mut coeff = BgvScheme::keygen(BgvParams::demo());
    coeff.set_eval_domain_enabled(false);
    let nslots = eval.slots().nslots();
    let bits = BitVec::from_fn(nslots, |i| i % 3 != 0);
    let ct = eval.encrypt_poly(&eval.slots().encode(&bits));

    let before = transform_snapshot();
    let _ = std::hint::black_box(eval.rotate_slots(&ct, 1));
    let rotate_eval_transforms = transform_snapshot().since(&before).total();
    let before = transform_snapshot();
    let _ = std::hint::black_box(coeff.rotate_slots(&ct, 1));
    let rotate_coeff_transforms = transform_snapshot().since(&before).total();

    let rotate_eval_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(eval.rotate_slots(&ct, 1));
    }));
    let rotate_coeff_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(coeff.rotate_slots(&ct, 1));
    }));
    let key_switch_eval_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(eval.key_switch_relin(&ct));
    }));
    let key_switch_coeff_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(coeff.key_switch_relin(&ct));
    }));

    // The threads dimension: identical kernels, identical outputs,
    // forked across the shared worker pool (per-prime rows and
    // key-switch digit rows). The knob is flipped back afterwards so
    // later single-thread measurements stay honest.
    let threads = threads.max(1);
    eval.set_threads(threads);
    let rotate_par_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(eval.rotate_slots(&ct, 1));
    }));
    let key_switch_par_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(eval.key_switch_relin(&ct));
    }));
    eval.set_threads(1);

    // Full mat-vec over a plaintext model on real BGV: nslots x nslots
    // random matrix, diagonal transforms cached at encode time.
    let backend = BgvBackend::demo();
    let n = backend.nslots();
    let mut matrix = BoolMatrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            if rng.gen_bool(0.4) {
                matrix.set(r, c, true);
            }
        }
    }
    let encoded = EncodedMatrix::encode_plain(&backend, &matrix);
    let v = backend.encrypt_bits(&BitVec::from_fn(n, |i| i % 2 == 0));
    let mat_vec_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(mat_vec(
            &backend,
            &encoded,
            &v,
            MatMulOptions::default(),
            Parallelism::sequential(),
        ));
    }));
    // Parallel mat_vec: the diagonals fork at the stage layer (the
    // dominant lever here — each chunk is several milliseconds of
    // rotations). Kernel-level forking stays suppressed inside those
    // chunks by the pool's outermost-fork guard, so this median
    // isolates the stage dimension; `rotate_par_ms` and
    // `key_switch_par_ms` above isolate the kernel dimension.
    let mat_vec_par_ms = median_ms(Box::new(|| {
        let _ = std::hint::black_box(mat_vec(
            &backend,
            &encoded,
            &v,
            MatMulOptions::default(),
            Parallelism { threads },
        ));
    }));

    KernelMedians {
        ring_mul_ntt_ms,
        ring_mul_school_ms,
        ring_mul_nega_ms,
        ring_mul_cyclic_size,
        ring_mul_nega_size,
        rotate_eval_ms,
        rotate_coeff_ms,
        rotate_par_ms,
        key_switch_eval_ms,
        key_switch_coeff_ms,
        key_switch_par_ms,
        mat_vec_ms,
        mat_vec_par_ms,
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rotate_eval_transforms,
        rotate_coeff_transforms,
    }
}

/// Renders [`KernelMedians`] plus a [`PackingSweep`] as the
/// `BENCH_kernels.json` document (hand-formatted: the vendored serde
/// shim has no JSON serialiser). The `threads` block records the
/// parallel degree of the `parallel` medians and the cores of the host
/// that produced them — the speedup figures only mean something
/// relative to `host_cores`.
pub fn kernels_json(k: &KernelMedians, p: &PackingSweep) -> String {
    let points: Vec<String> = p
        .points
        .iter()
        .map(|pt| {
            format!(
                "    {{\"batch\": {}, \"packed_qps\": {:.2}, \
                 \"stage_major_qps\": {:.2}, \"speedup\": {:.4}}}",
                pt.batch,
                pt.packed_qps,
                pt.stage_major_qps,
                pt.speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"params\": \"demo (m = 127, 16-prime chain)\",\n  \
         \"threads\": {{\"parallel\": {}, \"host_cores\": {}}},\n  \
         \"ring_mul_ms\": {{\"ntt\": {:.4}, \"schoolbook\": {:.4}}},\n  \
         \"ring_mul_negacyclic\": {:.4},\n  \
         \"ring_mul_transform_sizes\": {{\"cyclic\": {}, \"negacyclic\": {}}},\n  \
         \"rotate_ms\": {{\"eval_domain\": {:.4}, \"coefficient\": {:.4}, \"parallel\": {:.4}}},\n  \
         \"key_switch_ms\": {{\"eval_domain\": {:.4}, \"coefficient\": {:.4}, \"parallel\": {:.4}}},\n  \
         \"mat_vec_ms\": {{\"threads_1\": {:.4}, \"parallel\": {:.4}}},\n  \
         \"mat_vec_parallel_speedup\": {:.4},\n  \
         \"rotate_transforms\": {{\"eval_domain\": {}, \"coefficient\": {}}},\n  \
         \"packing_sweep\": {{\n    \
         \"model\": \"{}\", \"work_per_op\": {}, \"reps\": {},\n    \
         \"stride\": {}, \"lanes\": {}, \"slot_capacity\": {},\n    \
         \"points\": [\n{}\n    ]\n  }}\n}}\n",
        k.threads,
        k.host_cores,
        k.ring_mul_ntt_ms,
        k.ring_mul_school_ms,
        k.ring_mul_nega_ms,
        k.ring_mul_cyclic_size,
        k.ring_mul_nega_size,
        k.rotate_eval_ms,
        k.rotate_coeff_ms,
        k.rotate_par_ms,
        k.key_switch_eval_ms,
        k.key_switch_coeff_ms,
        k.key_switch_par_ms,
        k.mat_vec_ms,
        k.mat_vec_par_ms,
        k.mat_vec_ms / k.mat_vec_par_ms,
        k.rotate_eval_transforms,
        k.rotate_coeff_transforms,
        p.model,
        p.work_per_op,
        p.reps,
        p.stride,
        p.lanes,
        p.slot_capacity,
        points.join(",\n"),
    )
}

/// Cross-query packing throughput sweep: the same batch evaluated by
/// the packed path ([`PackingMode::Auto`] on a capacity-bounded clear
/// backend) and by the pre-packing stage-major loop
/// ([`PackingMode::Off`] on the *same* backend), at batch sizes from a
/// lone query up to a full ciphertext of lanes. Queries/second is the
/// honest unit here: packing wins by evaluating the four stages once
/// per chunk instead of once per query, so per-pass wall-clock barely
/// moves while per-query throughput multiplies.
///
/// [`PackingMode::Auto`]: copse_core::runtime::PackingMode::Auto
/// [`PackingMode::Off`]: copse_core::runtime::PackingMode::Off
#[derive(Clone, Debug)]
pub struct PackingSweep {
    /// Model swept (depth4 microbenchmark).
    pub model: String,
    /// Synthetic per-op work of the backend (wall-clock fidelity).
    pub work_per_op: usize,
    /// Samples per median.
    pub reps: usize,
    /// Slot stride one query occupies (widest pipeline operand).
    pub stride: usize,
    /// Queries per ciphertext at the swept capacity.
    pub lanes: usize,
    /// Slot capacity the swept backend advertises (`lanes * stride`).
    pub slot_capacity: usize,
    /// One entry per batch size.
    pub points: Vec<PackingPoint>,
}

/// One batch size of a [`PackingSweep`].
#[derive(Clone, Copy, Debug)]
pub struct PackingPoint {
    /// Queries per evaluation pass.
    pub batch: usize,
    /// Median queries/second through the packed path.
    pub packed_qps: f64,
    /// Median queries/second through the stage-major loop.
    pub stage_major_qps: f64,
}

impl PackingPoint {
    /// Packed throughput over stage-major throughput.
    pub fn speedup(&self) -> f64 {
        self.packed_qps / self.stage_major_qps
    }
}

impl PackingSweep {
    /// The sweep point at `batch`, if that size was measured.
    pub fn point_at(&self, batch: usize) -> Option<&PackingPoint> {
        self.points.iter().find(|p| p.batch == batch)
    }
}

/// Measures the packing sweep: batch sizes {1, 4, 16, lanes} on a
/// 32-lane capacity-bounded clear backend with the standard synthetic
/// per-op work, `reps` passes per point, median reported. Both
/// variants run the identical backend and deployment; only the
/// packing policy differs, so the throughput ratio isolates the
/// packed path itself.
pub fn measure_packing(reps: usize) -> PackingSweep {
    use copse_core::runtime::{Diane, EvalOptions, Maurice, PackingMode, Sally};
    use copse_fhe::{ClearBackend, ClearConfig};
    use copse_trace::Stopwatch;

    let reps = reps.max(1);
    let spec = table6_specs()[0];
    let forest = copse_forest::microbench::generate(&spec, crate::SUITE_SEED);
    let maurice = Maurice::compile(&forest, CompileOptions::default()).expect("compiles");

    // Probe pass: an effectively unbounded capacity reveals the
    // layout stride so the real backend can be sized in whole lanes.
    let probe = ClearBackend::new(ClearConfig {
        slot_capacity: Some(1 << 20),
        ..ClearConfig::default()
    });
    let stride = Sally::host(&probe, maurice.deploy(&probe, ModelForm::Encrypted))
        .pack_plan()
        .expect("unbounded capacity always packs")
        .stride;
    let lanes = 32usize;
    let slot_capacity = lanes * stride;

    let backend = ClearBackend::new(ClearConfig {
        slot_capacity: Some(slot_capacity),
        work_per_op: crate::WORK_PER_OP,
        ..ClearConfig::default()
    });
    let packed = Sally::host(&backend, maurice.deploy(&backend, ModelForm::Encrypted));
    let stage_major = Sally::with_options(
        &backend,
        maurice.deploy(&backend, ModelForm::Encrypted),
        EvalOptions {
            packing: PackingMode::Off,
            ..EvalOptions::default()
        },
    );
    assert!(
        packed.pack_plan().is_some(),
        "the swept backend must admit the packed path"
    );
    let diane = Diane::new(&backend, maurice.public_query_info());

    let mut points = Vec::new();
    for batch in [1usize, 4, 16, lanes] {
        let queries: Vec<_> =
            copse_forest::microbench::random_queries(&forest, batch, crate::SUITE_SEED ^ 0x9ACC)
                .iter()
                .map(|q| diane.encrypt_features(q).expect("valid query"))
                .collect();
        let qps = |sally: &Sally<'_, ClearBackend>| -> f64 {
            let times: Vec<_> = (0..reps)
                .map(|_| {
                    let start = Stopwatch::start();
                    let _ = std::hint::black_box(sally.classify_batch(&queries));
                    start.elapsed()
                })
                .collect();
            batch as f64 / crate::median(times).as_secs_f64()
        };
        points.push(PackingPoint {
            batch,
            packed_qps: qps(&packed),
            stage_major_qps: qps(&stage_major),
        });
    }
    PackingSweep {
        model: spec.name.to_string(),
        work_per_op: crate::WORK_PER_OP,
        reps,
        stride,
        lanes,
        slot_capacity,
        points,
    }
}

/// Plain-text rendering of a [`PackingSweep`].
pub fn packing_text(p: &PackingSweep) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Cross-query packing throughput ({}, stride {}, {} lanes, {} reps)",
        p.model, p.stride, p.lanes, p.reps
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<7} {:>14} {:>18} {:>9}",
        "batch", "packed_q/s", "stage_major_q/s", "speedup"
    );
    for pt in &p.points {
        let _ = writeln!(
            out,
            "{:<7} {:>14.1} {:>18.1} {:>8.2}x",
            pt.batch,
            pt.packed_qps,
            pt.stage_major_qps,
            pt.speedup()
        );
    }
    let _ = writeln!(
        out,
        "expected shape: ~1x at batch 1 (a lone query never packs); the gap\n\
         widens with batch size until every lane of the ciphertext is full"
    );
    out
}

/// Per-stage wall-clock medians for one batched evaluation pass — the
/// timing half of Figure 10 (the [`figure10`] exhibit reports the
/// modeled-cost half), plus the cost of a *disabled* tracing span
/// relative to the `mat_vec` kernel it instruments.
#[derive(Clone, Debug)]
pub struct StageMedians {
    /// Model the pass evaluated (depth5 microbenchmark).
    pub model: String,
    /// Queries per evaluation pass.
    pub batch: usize,
    /// Samples per median.
    pub reps: usize,
    /// Parallel degree of the pass.
    pub threads: usize,
    /// Cores the host advertised while measuring.
    pub host_cores: usize,
    /// Median comparison-stage wall-clock (SecComp).
    pub comparison_ms: f64,
    /// Median reshuffle-stage wall-clock (reshuffle MatMul).
    pub reshuffle_ms: f64,
    /// Median level-processing wall-clock (per-level MatMul ⊕ mask).
    pub levels_ms: f64,
    /// Median accumulation wall-clock.
    pub accumulate_ms: f64,
    /// Median whole-pass wall-clock.
    pub total_ms: f64,
    /// Cost of one `copse_trace::span` call while tracing is disabled.
    pub disabled_span_ns: f64,
    /// Median `mat_vec` wall-clock on the same backend (the kernel a
    /// permanent span instruments).
    pub mat_vec_ms: f64,
    /// `disabled_span_ns` as a percentage of the `mat_vec` median —
    /// the steady-state overhead of leaving the instrumentation in.
    pub disabled_overhead_pct: f64,
}

/// Measures per-stage wall-clock over `reps` batched passes of the
/// depth5 microbenchmark, and the disabled-span overhead against the
/// `mat_vec` kernel. Tracing stays **disabled** throughout: the stage
/// numbers come from [`EvalTrace`](copse_core::runtime::EvalTrace)'s
/// own wall-clocks, and the span probe must measure the disabled path.
pub fn measure_stages(reps: usize, threads: usize) -> StageMedians {
    use copse_core::artifacts::BoolMatrix;
    use copse_core::matmul::{mat_vec, EncodedMatrix, MatMulOptions};
    use copse_core::parallel::Parallelism;
    use copse_core::runtime::{Diane, EvalOptions, Maurice, Sally};
    use copse_fhe::{BitVec, FheBackend};
    use copse_trace::Stopwatch;

    let reps = reps.max(1);
    let threads = threads.max(1);
    let batch = 4;
    let spec = table6_specs()[1];
    let forest = copse_forest::microbench::generate(&spec, crate::SUITE_SEED);
    let backend = crate::bench_backend(crate::WORK_PER_OP);
    let maurice = Maurice::compile(&forest, CompileOptions::default()).expect("compiles");
    let sally = Sally::with_options(
        &backend,
        maurice.deploy(&backend, ModelForm::Encrypted),
        EvalOptions {
            parallelism: Parallelism { threads },
            ..EvalOptions::default()
        },
    );
    let diane = Diane::new(&backend, maurice.public_query_info());
    let queries: Vec<_> = copse_forest::microbench::random_queries(&forest, batch, 0xBEEF)
        .iter()
        .map(|q| diane.encrypt_features(q).expect("valid query"))
        .collect();

    copse_trace::set_enabled(false);
    let mut stage_times: [Vec<std::time::Duration>; 5] = Default::default();
    for _ in 0..reps {
        let start = Stopwatch::start();
        let (_, trace) = sally.classify_batch_traced(&queries);
        let total = start.elapsed();
        for (slot, d) in stage_times.iter_mut().zip([
            trace.comparison.duration,
            trace.reshuffle.duration,
            trace.levels.duration,
            trace.accumulate.duration,
            total,
        ]) {
            slot.push(d);
        }
    }
    let ms = |ts: Vec<std::time::Duration>| crate::median(ts).as_secs_f64() * 1e3;
    let [comparison, reshuffle, levels, accumulate, total] = stage_times;

    // Disabled-span probe: the guard construction + drop around one
    // relaxed load, amortized over enough calls to resolve it.
    let probes = 1_000_000u32;
    assert!(!copse_trace::enabled(), "probe must hit the disabled path");
    let start = Stopwatch::start();
    for _ in 0..probes {
        let _span = copse_trace::span("overhead-probe");
    }
    let disabled_span_ns = start.elapsed().as_secs_f64() * 1e9 / f64::from(probes);

    // The kernel that span instruments, on the same backend.
    let n = 64;
    let mut matrix = BoolMatrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            if (r * 31 + c * 17) % 5 == 0 {
                matrix.set(r, c, true);
            }
        }
    }
    let encoded = EncodedMatrix::encode_plain(&backend, &matrix);
    let v = backend.encrypt_bits(&BitVec::from_fn(n, |i| i % 2 == 0));
    let mat_vec_times: Vec<_> = (0..reps)
        .map(|_| {
            let start = Stopwatch::start();
            let _ = std::hint::black_box(mat_vec(
                &backend,
                &encoded,
                &v,
                MatMulOptions::default(),
                Parallelism::sequential(),
            ));
            start.elapsed()
        })
        .collect();
    let mat_vec_ms = crate::median(mat_vec_times).as_secs_f64() * 1e3;

    StageMedians {
        model: spec.name.to_string(),
        batch,
        reps,
        threads,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        comparison_ms: ms(comparison),
        reshuffle_ms: ms(reshuffle),
        levels_ms: ms(levels),
        accumulate_ms: ms(accumulate),
        total_ms: ms(total),
        disabled_span_ns,
        mat_vec_ms,
        // One span per mat_vec call.
        disabled_overhead_pct: disabled_span_ns / (mat_vec_ms * 1e6) * 100.0,
    }
}

/// Renders [`StageMedians`] as the `BENCH_stages.json` document
/// (hand-formatted: the vendored serde shim has no JSON serialiser).
pub fn stages_json(s: &StageMedians) -> String {
    format!(
        "{{\n  \"model\": \"{}\",\n  \
         \"batch\": {},\n  \"reps\": {},\n  \
         \"threads\": {{\"parallel\": {}, \"host_cores\": {}}},\n  \
         \"stage_ms\": {{\"comparison\": {:.4}, \"reshuffle\": {:.4}, \
         \"levels\": {:.4}, \"accumulate\": {:.4}, \"total\": {:.4}}},\n  \
         \"tracing_overhead\": {{\"disabled_span_ns\": {:.2}, \
         \"mat_vec_ms\": {:.4}, \"disabled_overhead_pct\": {:.5}}}\n}}\n",
        s.model,
        s.batch,
        s.reps,
        s.threads,
        s.host_cores,
        s.comparison_ms,
        s.reshuffle_ms,
        s.levels_ms,
        s.accumulate_ms,
        s.total_ms,
        s.disabled_span_ns,
        s.mat_vec_ms,
        s.disabled_overhead_pct,
    )
}

/// Plain-text rendering of [`StageMedians`], Figure 10 style.
pub fn stages_text(s: &StageMedians) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Per-stage wall-clock ({}, batch {}, {} reps, {} threads on {} cores)",
        s.model, s.batch, s.reps, s.threads, s.host_cores
    );
    let _ = writeln!(out);
    let sum = s.comparison_ms + s.reshuffle_ms + s.levels_ms + s.accumulate_ms;
    for (name, ms) in [
        ("comparison", s.comparison_ms),
        ("reshuffle", s.reshuffle_ms),
        ("levels", s.levels_ms),
        ("accumulate", s.accumulate_ms),
    ] {
        let width = ((ms / sum.max(f64::EPSILON)) * 40.0).round() as usize;
        let _ = writeln!(
            out,
            "{name:<12} {ms:>10.2} ms  {}",
            "#".repeat(width.max(1))
        );
    }
    let _ = writeln!(out, "{:<12} {:>10.2} ms", "total", s.total_ms);
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "disabled span: {:.1} ns/call = {:.4}% of a {:.2} ms mat_vec",
        s.disabled_span_ns, s.disabled_overhead_pct, s.mat_vec_ms
    );
    out
}

/// Enables tracing, runs one batched evaluation pass of the depth5
/// microbenchmark, and returns the collected spans as a validated
/// Chrome trace-event JSON document (`chrome://tracing`-loadable).
pub fn capture_chrome_trace(threads: usize) -> String {
    use copse_core::parallel::Parallelism;
    use copse_core::runtime::{Diane, EvalOptions, Maurice, Sally};

    let forest = copse_forest::microbench::generate(&table6_specs()[1], crate::SUITE_SEED);
    let backend = crate::bench_backend(crate::WORK_PER_OP);
    let maurice = Maurice::compile(&forest, CompileOptions::default()).expect("compiles");
    let sally = Sally::with_options(
        &backend,
        maurice.deploy(&backend, ModelForm::Encrypted),
        EvalOptions {
            parallelism: Parallelism {
                threads: threads.max(1),
            },
            ..EvalOptions::default()
        },
    );
    let diane = Diane::new(&backend, maurice.public_query_info());
    let queries: Vec<_> = copse_forest::microbench::random_queries(&forest, 4, 0xBEEF)
        .iter()
        .map(|q| diane.encrypt_features(q).expect("valid query"))
        .collect();

    copse_trace::clear_events();
    copse_trace::set_enabled(true);
    let _ = sally.classify_batch_traced(&queries);
    copse_trace::set_enabled(false);
    let json = copse_trace::chrome_trace_json(&copse_trace::take_events());
    copse_trace::validate_chrome_trace(&json).expect("exporter emits valid Chrome traces");
    json
}

/// Rotate / key-switch kernel exhibit: cached evaluation-domain key
/// switching (key parts pre-transformed at keygen, each digit row
/// transformed once, one inverse per output row) vs the per-call
/// coefficient-domain route, at demo parameters. Key switching is the
/// dominant cost of the rotate-heavy `mat_vec` at COPSE's heart, so
/// this speedup propagates to every server-side batch.
pub fn rotate_keyswitch(k: &KernelMedians) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Rotate / key-switch kernel: evaluation-domain vs per-call transforms (demo parameters)"
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<12} {:>14} {:>14} {:>9} {:>14} {:>22}",
        "kernel",
        "eval_ms",
        "coefficient_ms",
        "speedup",
        format!("{}-thread_ms", k.threads),
        "transforms (eval/coef)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>14.3} {:>14.3} {:>8.1}x {:>14.3} {:>22}",
        "rotate",
        k.rotate_eval_ms,
        k.rotate_coeff_ms,
        k.rotate_coeff_ms / k.rotate_eval_ms,
        k.rotate_par_ms,
        format!(
            "{} / {}",
            k.rotate_eval_transforms, k.rotate_coeff_transforms
        ),
    );
    let _ = writeln!(
        out,
        "{:<12} {:>14.3} {:>14.3} {:>8.1}x {:>14.3}",
        "key_switch",
        k.key_switch_eval_ms,
        k.key_switch_coeff_ms,
        k.key_switch_coeff_ms / k.key_switch_eval_ms,
        k.key_switch_par_ms,
    );
    let _ = writeln!(
        out,
        "{:<12} {:>14.3} {:>14} {:>9} {:>14.3} (plaintext model, cached diagonals)",
        "mat_vec", k.mat_vec_ms, "-", "-", k.mat_vec_par_ms,
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "ring_mul at comparable dimension: negacyclic n = {} ({:.3} ms, size-{} \
         transforms) vs prime-cyclotomic m = 127 ({:.3} ms, size-{} transforms) \
         — the power-of-two flavor transforms at half the length",
        k.ring_mul_nega_size,
        k.ring_mul_nega_ms,
        k.ring_mul_nega_size,
        k.ring_mul_ntt_ms,
        k.ring_mul_cyclic_size,
    );
    let _ = writeln!(
        out,
        "mat_vec speedup at {} threads: {:.2}x on a {}-core host",
        k.threads,
        k.mat_vec_ms / k.mat_vec_par_ms,
        k.host_cores,
    );
    let _ = writeln!(
        out,
        "expected shape: transforms per key switch drop from ~3 per digit product\n\
         to ~1 per digit (+2 per output row); >= 3x wall-clock on rotate_slots;\n\
         the threads column tracks host cores (>= 2x mat_vec at 4 threads on >= 4 cores)"
    );
    out
}

/// Ablations: design-choice studies called out in DESIGN.md.
pub fn ablations(seed: u64, n_queries: usize, work: usize) -> String {
    let forest = copse_forest::microbench::generate(&table6_specs()[1], seed);
    let meta = compile(&forest, CompileOptions::default())
        .expect("compiles")
        .meta;
    let mut out = String::new();
    let _ = writeln!(out, "## Ablations (depth5 microbenchmark)");
    let _ = writeln!(out);

    // 1. Reshuffle fusion.
    let run = |options: CompileOptions, matmul_skip: bool, form: ModelForm| -> Measurement {
        use copse_core::matmul::MatMulOptions;
        use copse_core::parallel::Parallelism;
        use copse_core::runtime::{Diane, EvalOptions, Maurice, Sally};
        use copse_fhe::{CostModel, FheBackend};
        let backend = crate::bench_backend(work);
        let maurice = Maurice::compile(&forest, options).expect("compiles");
        let sally = Sally::with_options(
            &backend,
            maurice.deploy(&backend, form),
            EvalOptions {
                parallelism: Parallelism::sequential(),
                matmul: MatMulOptions {
                    skip_zero_diagonals: matmul_skip,
                    ..MatMulOptions::default()
                },
                ..EvalOptions::default()
            },
        );
        let diane = Diane::new(&backend, maurice.public_query_info());
        let queries = copse_forest::microbench::random_queries(&forest, n_queries, 42);
        let mut times = Vec::new();
        let mut ops = copse_fhe::OpCounts::default();
        for (i, q) in queries.iter().enumerate() {
            let query = diane.encrypt_features(q).expect("valid");
            let before = backend.meter().snapshot();
            let start = copse_trace::Stopwatch::start();
            let _ = sally.classify(&query);
            times.push(start.elapsed());
            if i == 0 {
                ops = backend.meter().snapshot().since(&before);
            }
        }
        Measurement {
            name: String::new(),
            median_wall: crate::median(times),
            ops_per_query: ops,
            modeled_ms: CostModel::default().modeled_ms(&ops),
        }
    };

    let unfused = run(CompileOptions::default(), false, ModelForm::Encrypted);
    let fused = run(
        CompileOptions {
            fuse_reshuffle: true,
            ..CompileOptions::default()
        },
        false,
        ModelForm::Encrypted,
    );
    let _ = writeln!(out, "reshuffle fusion (L' = L*R at compile time):");
    let _ = writeln!(
        out,
        "  unfused: {:.1} ms modeled ({} mult, {} rot); fused: {:.1} ms modeled ({} mult, {} rot)",
        unfused.modeled_ms,
        unfused.ops_per_query.multiplies_combined(),
        unfused.ops_per_query.rotate,
        fused.modeled_ms,
        fused.ops_per_query.multiplies_combined(),
        fused.ops_per_query.rotate,
    );
    let _ = writeln!(
        out,
        "  (fusing removes one q-column MatMul but widens each of the d level matrices from b={} to q={} columns)",
        meta.branches, meta.quantized
    );
    let _ = writeln!(out);

    // 2. Accumulation strategy: depth only.
    let bal = CostInputs::from_meta(
        &meta,
        ModelForm::Encrypted,
        false,
        Accumulation::BalancedTree,
    );
    let lin = CostInputs::from_meta(&meta, ModelForm::Encrypted, false, Accumulation::Linear);
    let _ = writeln!(out, "accumulation strategy (multiplicative depth):");
    let _ = writeln!(
        out,
        "  balanced tree: depth {}; linear fold: depth {} (same {} multiplies)",
        complexity::ours::classify_depth(&bal),
        complexity::ours::classify_depth(&lin),
        complexity::ours::accumulate_counts(meta.max_level).multiply,
    );
    let _ = writeln!(out);

    // 3. Sparse plaintext diagonals.
    let dense = run(CompileOptions::default(), false, ModelForm::Plain);
    let sparse = run(CompileOptions::default(), true, ModelForm::Plain);
    let _ = writeln!(out, "plaintext-model sparse diagonal skipping:");
    let _ = writeln!(
        out,
        "  dense: {} const-mults, {:.1} ms modeled; skip-zero: {} const-mults, {:.1} ms modeled",
        dense.ops_per_query.constant_multiply,
        dense.modeled_ms,
        sparse.ops_per_query.constant_multiply,
        sparse.modeled_ms,
    );
    let _ = writeln!(
        out,
        "  (sound only for plaintext models; encrypted diagonals hide their sparsity)"
    );
    let _ = writeln!(out);

    // 4. Comparator variant: shrink SecComp for both COPSE and the
    // baseline, and watch the Figure 6 gap move.
    use copse_core::seccomp::SecCompVariant;
    let _ = writeln!(
        out,
        "comparator variant (SecComp mult counts, encrypted model):"
    );
    for p in [8u32, 16] {
        let ladder =
            complexity::ours::seccomp_counts(p, ModelForm::Encrypted, SecCompVariant::LadderPrefix);
        let shared =
            complexity::ours::seccomp_counts(p, ModelForm::Encrypted, SecCompVariant::SharedPrefix);
        let _ = writeln!(
            out,
            "  p = {p:>2}: ladder {} ct-mults (paper-parity) vs shared-prefix {} ct-mults",
            ladder.multiply, shared.multiply
        );
    }
    let _ = writeln!(
        out,
        "  (the baseline pays SecComp per branch, so a cheaper comparator narrows\n   COPSE's relative advantage while speeding both systems up)"
    );
    out
}

/// Static circuit analysis of the whole zoo, as the
/// `BENCH_analysis.json` document: per-model exact operation counts,
/// the multiplicative-depth profile, the minimum slot capacity, the
/// modeled HElib cost, and the admission verdict against the default
/// clear profile — each entry cross-checked op-for-op against one
/// metered evaluation so the artifact doubles as the analyzer's CI
/// smoke test.
///
/// # Panics
///
/// Panics if a zoo model fails to compile or the static prediction
/// disagrees with the meter (the conformance property this artifact
/// certifies).
pub fn analysis_json(seed: u64) -> String {
    use copse_analyze::{BackendProfile, CircuitReport, EvalShape};
    use copse_core::runtime::{Diane, Maurice, Sally};
    use copse_fhe::{ClearBackend, FheBackend};
    use copse_forest::microbench::random_queries;

    let cost = CostModel::helib_bgv_128();
    let reference = ClearBackend::with_defaults();
    let profile = BackendProfile::of(&reference);

    let mut entries = Vec::new();
    for model in suite(seed) {
        let maurice =
            Maurice::compile(&model.forest, CompileOptions::default()).expect("zoo model compiles");
        for form in [ModelForm::Plain, ModelForm::Encrypted] {
            let shape = EvalShape::plan(&maurice, form);
            let report = CircuitReport::analyze(maurice.compiled(), &shape);

            // Cross-check: one metered pass must agree exactly.
            let be = ClearBackend::with_defaults();
            let sally = Sally::host(&be, maurice.deploy(&be, form));
            let diane = Diane::new(&be, maurice.public_query_info());
            let query = diane
                .encrypt_features(&random_queries(&model.forest, 1, seed ^ 0xA11)[0])
                .expect("valid query");
            let (results, trace) = sally.classify_batch_traced(std::slice::from_ref(&query));
            assert_eq!(
                trace.total_ops(),
                report.total_ops(),
                "{} {form:?}: static ops diverge from the meter",
                model.name
            );
            assert_eq!(
                be.depth(results[0].ciphertext()),
                report.depth,
                "{} {form:?}: static depth diverges from the meter",
                model.name
            );

            let ops = report.total_ops();
            let form_tag = match form {
                ModelForm::Plain => "plain",
                ModelForm::Encrypted => "encrypted",
            };
            let group = match model.group {
                ModelGroup::Micro => "micro",
                ModelGroup::RealWorld => "real_world",
            };
            entries.push(format!(
                "    {{\"model\": \"{}\", \"group\": \"{}\", \"form\": \"{}\", \
                 \"depth\": {}, \"min_slot_capacity\": {}, \
                 \"ops\": {{\"rotate\": {}, \"add\": {}, \"constant_add\": {}, \
                 \"multiply\": {}, \"constant_multiply\": {}, \"total\": {}}}, \
                 \"modeled_ms\": {:.3}, \"admitted\": {}, \"meter_parity\": true}}",
                model.name,
                group,
                form_tag,
                report.depth,
                report.min_slot_capacity,
                ops.rotate,
                ops.add,
                ops.constant_add,
                ops.multiply,
                ops.constant_multiply,
                ops.total_homomorphic(),
                report.modeled_ms(&cost),
                report.admit(&profile).is_empty(),
            ));
        }
    }
    format!(
        "{{\n  \"seed\": {seed},\n  \"reference_profile\": {{\"depth_budget\": {}, \
         \"slot_capacity\": null, \"supports_slot_rotation\": true}},\n  \
         \"circuits\": [\n{}\n  ]\n}}\n",
        profile.depth_budget,
        entries.join(",\n"),
    )
}
