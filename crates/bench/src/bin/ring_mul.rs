//! Prints the ring-multiplication kernel exhibit (NTT vs schoolbook).
use copse_bench::reports;

fn main() {
    println!("{}", reports::ring_mul());
}
