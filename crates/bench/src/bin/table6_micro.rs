//! Regenerates paper Table 6: microbenchmark specifications and the
//! realised shapes of every benchmark model.
use copse_bench::{reports, SUITE_SEED};

fn main() {
    println!("{}", reports::table6(SUITE_SEED));
}
