//! Regenerates paper Figure 7: multithreaded vs single-threaded COPSE.
use copse_bench::{queries_from_args, reports, threads_from_args, SUITE_SEED, WORK_PER_OP};

fn main() {
    println!(
        "{}",
        reports::figure7(
            SUITE_SEED,
            queries_from_args(),
            threads_from_args(),
            WORK_PER_OP
        )
    );
}
