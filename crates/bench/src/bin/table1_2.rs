//! Regenerates paper Tables 1-2: operation counts and multiplicative
//! depth, with formula-vs-meter verification.
use copse_bench::{reports, SUITE_SEED};

fn main() {
    println!("{}", reports::table1_2(SUITE_SEED));
}
