//! Query-scoped tracing benchmark: proves the observability tier is
//! honest (a traced query yields one validator-clean merged Chrome
//! trace), complete (a chaos soak lands every outcome class in the
//! flight recorder), cheap (throughput with the recorder on vs
//! `flight_capacity: 0`), and machine-readable (the metrics
//! exposition round-trips through the in-repo parser). Any validator
//! or parser failure aborts the run — CI treats that as a build
//! failure. Writes `BENCH_serving_trace.json` plus one sample merged
//! trace for chrome://tracing.
//!
//! Flags:
//! * `--clients N`    concurrent soak clients (default 200);
//! * `--queries Q`    queries per client (default 3);
//! * `--seed S`       fault/jitter seed (default 0x7ACE);
//! * `--out PATH`     summary path (default `BENCH_serving_trace.json`);
//! * `--trace-out P`  sample merged trace (default
//!   `BENCH_serving_trace_sample.json`).

use copse_bench::arg_value;
use copse_core::compiler::CompileOptions;
use copse_core::runtime::ModelForm;
use copse_core::wire::Frame;
use copse_fhe::ClearBackend;
use copse_forest::microbench::{self, table6_specs};
use copse_forest::Forest;
use copse_server::transport::{read_frame, write_frame};
use copse_server::{
    parse_exposition, FaultPlan, FlightRecord, InferenceClient, RetryPolicy, ServerBuilder,
    ServerConfig, ServerTiming, TimingCause,
};
use copse_trace::{validate_chrome_trace, Stopwatch};
use std::io::ErrorKind;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Outcome split plus wall clock for one soak run.
#[derive(Default)]
struct SoakResult {
    served: u64,
    shed: u64,
    expired: u64,
    failed: u64,
    retries: u64,
    wall_seconds: f64,
    timings: Vec<ServerTiming>,
    flight: Vec<FlightRecord>,
    exposition: Option<String>,
}

impl SoakResult {
    fn total(&self) -> u64 {
        self.served + self.shed + self.expired + self.failed
    }

    fn qps(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.total() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

fn connect_retrying(
    addr: SocketAddr,
    backend: &Arc<ClearBackend>,
    model: &str,
    policy: RetryPolicy,
) -> InferenceClient<ClearBackend> {
    for _ in 0..30 {
        match InferenceClient::connect_with(addr, Arc::clone(backend), model, policy) {
            Ok(client) => return client,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("could not connect through the fault plan");
}

fn median(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[(sorted.len() - 1) / 2]
    }
}

fn median_of(timings: &[ServerTiming], f: impl Fn(&ServerTiming) -> u64) -> u64 {
    let mut vals: Vec<u64> = timings.iter().map(f).collect();
    vals.sort_unstable();
    median(&vals)
}

/// One traced query against a quiet server: the canonical merged
/// trace. Returns the Chrome JSON (already validator-checked) and the
/// server's timing splits.
fn sample_trace(backend: &Arc<ClearBackend>, forest: &Forest) -> (String, ServerTiming) {
    let handle = ServerBuilder::new(Arc::clone(backend))
        .register(
            "depth4",
            forest,
            CompileOptions::default(),
            ModelForm::Encrypted,
        )
        .expect("model compiles")
        .bind("127.0.0.1:0")
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let mut client = connect_retrying(handle.addr(), backend, "depth4", RetryPolicy::none());
    client.set_tracing(true);
    let query = microbench::random_queries(forest, 1, 11).remove(0);
    let served = client.classify(&query).expect("traced query serves");
    let trace = served.trace.expect("traced");
    let json = trace.chrome_json();
    validate_chrome_trace(&json).expect("sample merged trace is validator-clean");
    let timing = served.timing.expect("traced answer carries ServerTiming");
    handle.shutdown();
    (json, timing)
}

/// The 200-client traced soak. With `chaos` the server gets the
/// hostile fault plan, a queue tight enough to shed, per-client
/// deadlines, and one poisoned query — every outcome class on
/// demand. Without it the load is quiet and uniform, so the
/// enabled-vs-disabled throughput delta is the flight recorder's
/// cost and nothing else (under chaos, retry backoff would drown it).
fn run_soak(
    flight_capacity: usize,
    chaos: bool,
    clients: usize,
    queries: usize,
    seed: u64,
    models: &[(&'static str, Forest)],
    backend: &Arc<ClearBackend>,
) -> SoakResult {
    let mut builder = ServerBuilder::new(Arc::clone(backend)).config(ServerConfig {
        batch_window: Duration::from_millis(2),
        max_batch: 16,
        // Under chaos: tight enough that the 200-client burst
        // actually sheds — the Shed outcome class must appear in the
        // flight dump. Quiet: roomy, so nothing sheds and the wall
        // clock measures serving, not backoff sleeps.
        queue_capacity: if chaos { 8 } else { 256 },
        retry_after_ms: 10,
        flight_capacity,
        ..ServerConfig::default()
    });
    if chaos {
        builder = builder.faults(FaultPlan::chaos(seed));
    }
    for (name, forest) in models {
        builder = builder
            .register(
                *name,
                forest,
                CompileOptions::default(),
                ModelForm::Encrypted,
            )
            .expect("model compiles");
    }
    let handle = builder
        .bind("127.0.0.1:0")
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let addr = handle.addr();

    let timings: Arc<Mutex<Vec<ServerTiming>>> = Arc::new(Mutex::new(Vec::new()));
    let wall = Stopwatch::start();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let backend = Arc::clone(backend);
            let timings = Arc::clone(&timings);
            let (name, forest) = &models[c % models.len()];
            let name = *name;
            let queries_for_client = microbench::random_queries(forest, queries, c as u64 + 7);
            let expected: Vec<Vec<bool>> = queries_for_client
                .iter()
                .map(|q| forest.classify_leaf_hits(q))
                .collect();
            std::thread::Builder::new()
                .name(format!("trace-soak-{c}"))
                .spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 6,
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(100),
                        jitter_seed: seed ^ c as u64,
                    };
                    let mut client = connect_retrying(addr, &backend, name, policy);
                    // Every query in the soak is traced — tracing
                    // under full load is the case being priced.
                    client.set_tracing(true);
                    // Under chaos every 8th client runs with a tight
                    // deadline so the in-queue expiry path sees load.
                    if chaos && c % 8 == 7 {
                        client.set_deadline(Some(Duration::from_millis(1)));
                    }
                    let mut tally = SoakResult::default();
                    for (q, want) in queries_for_client.iter().zip(&expected) {
                        match client.classify(q) {
                            Ok(served) => {
                                assert_eq!(
                                    &served.outcome.leaf_hits().to_bools(),
                                    want,
                                    "wrong answer under traced soak for {name} {q:?}"
                                );
                                let trace = served.trace.as_ref().expect("traced answer");
                                validate_chrome_trace(&trace.chrome_json())
                                    .expect("merged trace stays valid under chaos");
                                if let Some(t) = served.timing.clone() {
                                    timings.lock().expect("timings lock").push(t);
                                }
                                tally.served += 1;
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => tally.shed += 1,
                            Err(e) if e.to_string().contains("expired") => tally.expired += 1,
                            Err(_) => tally.failed += 1,
                        }
                    }
                    tally.retries = client.total_retries();
                    tally
                })
                .expect("spawn soak client")
        })
        .collect();

    let mut result = SoakResult::default();
    for t in threads {
        let tally = t.join().expect("soak client thread must not panic");
        result.served += tally.served;
        result.shed += tally.shed;
        result.expired += tally.expired;
        result.failed += tally.failed;
        result.retries += tally.retries;
    }
    result.wall_seconds = wall.elapsed().as_secs_f64();
    assert_eq!(
        result.total(),
        (clients * queries) as u64,
        "every query accounted for"
    );
    assert!(
        result.served > 0,
        "a soak that serves nothing priced nothing"
    );

    // One deliberately malformed traced query: the Failed outcome
    // class, injected after the soak so it cannot skew the clock.
    if chaos {
        poison_one_query(addr);
    }

    if flight_capacity > 0 {
        // The exposition must parse — a grammar regression is a
        // monitoring outage, so it is a bench failure.
        let mut probe = connect_retrying(addr, backend, models[0].0, RetryPolicy::none());
        let text = probe.metrics().expect("metrics exposition fetch");
        let parsed = parse_exposition(&text).expect("exposition parses");
        assert!(
            parsed.value("copse_queries_served_total", &[]).is_some(),
            "served counter exposed"
        );
        result.exposition = Some(text);
    }
    result.timings = Arc::try_unwrap(timings)
        .map(|m| m.into_inner().expect("timings lock"))
        .unwrap_or_default();
    result.flight = handle.shutdown();
    result
}

/// Sends one traced query with a garbage ciphertext plane over a raw
/// socket; the server answers with a typed `Error` and the flight
/// recorder files it under `Failed`. The still-active chaos plan may
/// eat the connection itself, so the attempt retries until the
/// `Error` answer actually lands.
fn poison_one_query(addr: SocketAddr) {
    let mut last = None;
    for _ in 0..30 {
        match try_poison_one_query(addr) {
            Ok(()) => return,
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    panic!("poisoned query never got its Error through the fault plan: {last:?}");
}

fn try_poison_one_query(addr: SocketAddr) -> std::io::Result<()> {
    let stream = std::net::TcpStream::connect(addr)?;
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    write_frame(
        &mut writer,
        &Frame::ClientHello {
            model: "depth4".into(),
        },
    )?;
    match read_frame(&mut reader)? {
        Frame::ServerHello { .. } => {}
        other => panic!("expected ServerHello, got {other:?}"),
    }
    write_frame(
        &mut writer,
        &Frame::Query {
            id: 1,
            deadline_ms: 0,
            trace: Some(0xBAD_C0DE),
            planes: vec![bytes::Bytes::copy_from_slice(b"junk")],
        },
    )?;
    match read_frame(&mut reader)? {
        Frame::Error { .. } => Ok(()),
        other => panic!("expected Error for the poisoned query, got {other:?}"),
    }
}

fn cause_count(flight: &[FlightRecord], cause: TimingCause) -> u64 {
    flight.iter().filter(|r| r.cause == cause).count() as u64
}

fn main() {
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let queries: usize = arg_value("--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let seed: u64 = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x7ACE);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_serving_trace.json".into());
    let trace_out =
        arg_value("--trace-out").unwrap_or_else(|| "BENCH_serving_trace_sample.json".into());

    let backend = Arc::new(ClearBackend::with_defaults());
    let specs = table6_specs();
    let models = [
        ("depth4", microbench::generate(&specs[0], 5)),
        ("width55", microbench::generate(&specs[3], 5)),
    ];

    // Phase 1: the canonical single-query merged trace.
    let (sample_json, sample_timing) = sample_trace(&backend, &models[0].1);
    std::fs::write(&trace_out, &sample_json).expect("write sample trace");
    println!("sample merged trace: {trace_out} (validator-clean)");

    // Phase 2: the recorder's price, measured on a quiet soak (no
    // faults, no sheds — under chaos, retry backoff sleeps dominate
    // the wall clock and would drown a sub-percent cost). A
    // quarter-scale throwaway run pays thread/page/allocator warmup,
    // then the two configurations alternate and each keeps its best
    // run, squeezing out scheduler noise.
    let _ = run_soak(
        0,
        false,
        clients.div_ceil(4),
        queries,
        seed,
        &models,
        &backend,
    );
    let mut qps_disabled: f64 = 0.0;
    let mut qps_enabled: f64 = 0.0;
    for _ in 0..5 {
        let off = run_soak(0, false, clients, queries, seed, &models, &backend);
        assert!(off.flight.is_empty(), "capacity 0 must record nothing");
        qps_disabled = qps_disabled.max(off.qps());
        let on = run_soak(1024, false, clients, queries, seed, &models, &backend);
        assert!(!on.flight.is_empty(), "the recorder must have recorded");
        qps_enabled = qps_enabled.max(on.qps());
    }
    let overhead_pct = if qps_disabled > 0.0 {
        100.0 * (qps_disabled - qps_enabled) / qps_disabled
    } else {
        0.0
    };

    // Phase 3: completeness — the chaos soak with the recorder on.
    let enabled = run_soak(1024, true, clients, queries, seed, &models, &backend);

    // The chaos soak's flight dump holds every outcome class.
    let flight = &enabled.flight;
    for cause in [
        TimingCause::Served,
        TimingCause::Shed,
        TimingCause::Expired,
        TimingCause::Failed,
    ] {
        assert!(
            cause_count(flight, cause) >= 1,
            "outcome class {cause:?} missing from the flight dump"
        );
    }
    for record in flight {
        assert!(record.total_nanos > 0, "incomplete record {record:?}");
    }

    // Per-query attribution medians over every traced served answer.
    let timings = &enabled.timings;
    let med_queue = median_of(timings, |t| t.dequeue_nanos.saturating_sub(t.enqueue_nanos));
    let med_assembly = median_of(timings, |t| {
        t.assembled_nanos.saturating_sub(t.dequeue_nanos)
    });
    let med_eval = median_of(timings, |t| t.stage_nanos.iter().sum());
    let med_total = median_of(timings, |t| t.encode_nanos);
    let med_batch = median_of(timings, |t| u64::from(t.batch_size));

    let json = format!(
        "{{\n  \"clients\": {clients},\n  \"queries_per_client\": {queries},\n  \
         \"seed\": {seed},\n  \"chaos\": true,\n  \"traced\": true,\n  \
         \"served\": {},\n  \"shed\": {},\n  \"expired\": {},\n  \"failed\": {},\n  \
         \"retried\": {},\n  \"wall_seconds\": {:.3},\n  \
         \"qps_flight_enabled\": {:.1},\n  \"qps_flight_disabled\": {:.1},\n  \
         \"flight_overhead_pct\": {overhead_pct:.2},\n  \
         \"flight_records\": {},\n  \
         \"flight_served\": {},\n  \"flight_shed\": {},\n  \
         \"flight_expired\": {},\n  \"flight_failed\": {},\n  \
         \"median_queue_wait_nanos\": {med_queue},\n  \
         \"median_batch_assembly_nanos\": {med_assembly},\n  \
         \"median_eval_nanos\": {med_eval},\n  \
         \"median_server_total_nanos\": {med_total},\n  \
         \"median_batch_size\": {med_batch},\n  \
         \"sample_trace_file\": \"{trace_out}\",\n  \
         \"sample_server_total_nanos\": {},\n  \
         \"exposition_bytes\": {}\n}}\n",
        enabled.served,
        enabled.shed,
        enabled.expired,
        enabled.failed,
        enabled.retries,
        enabled.wall_seconds,
        qps_enabled,
        qps_disabled,
        flight.len(),
        cause_count(flight, TimingCause::Served),
        cause_count(flight, TimingCause::Shed),
        cause_count(flight, TimingCause::Expired),
        cause_count(flight, TimingCause::Failed),
        sample_timing.encode_nanos,
        enabled.exposition.as_deref().map_or(0, str::len),
    );
    std::fs::write(&out, &json).expect("write trace bench JSON");
    println!(
        "traced soak: {clients} clients x {queries} queries — served {}, shed {}, expired {}, \
         failed {}, flight overhead {overhead_pct:.2}% ({:.0} vs {:.0} qps)",
        enabled.served, enabled.shed, enabled.expired, enabled.failed, qps_enabled, qps_disabled,
    );
    println!("wrote {out}");
}
