//! Bounded soak of the serving tier: many concurrent client threads,
//! mixed models, optional fault injection, and hard invariants — the
//! CI shape of the chaos test scaled up. Every query must end in
//! exactly one of {correct result, shed, typed error}; any wrong
//! answer aborts the run. Writes `BENCH_soak.json` with the
//! served/shed/retried split and client-observed p50/p99 latency.
//!
//! Flags:
//! * `--clients N`  concurrent client threads (default 200);
//! * `--queries Q`  queries per client (default 5);
//! * `--chaos`      build the server with `FaultPlan::chaos(seed)`;
//! * `--seed S`     fault/jitter seed (default 0xC0DE);
//! * `--out PATH`   output path (default `BENCH_soak.json`).

use copse_bench::arg_value;
use copse_core::compiler::CompileOptions;
use copse_core::runtime::ModelForm;
use copse_fhe::ClearBackend;
use copse_forest::microbench::{self, table6_specs};
use copse_server::{FaultPlan, InferenceClient, RetryPolicy, ServerBuilder, ServerConfig};
use copse_trace::Stopwatch;
use std::io::ErrorKind;
use std::sync::Arc;
use std::time::Duration;

struct ClientTally {
    served: u64,
    shed: u64,
    expired: u64,
    failed: u64,
    retries: u64,
    latencies: Vec<Duration>,
}

fn percentile_ms(sorted: &[Duration], pct: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let ix = (sorted.len() - 1) * pct / 100;
    sorted[ix].as_secs_f64() * 1e3
}

fn main() {
    let clients: usize = arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let queries: usize = arg_value("--queries")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let seed: u64 = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0DE);
    let chaos = std::env::args().any(|a| a == "--chaos");
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_soak.json".into());

    let backend = Arc::new(ClearBackend::with_defaults());
    let specs = table6_specs();
    let models = [
        ("depth4", microbench::generate(&specs[0], 5)),
        ("width55", microbench::generate(&specs[3], 5)),
    ];
    let mut builder = ServerBuilder::new(Arc::clone(&backend)).config(ServerConfig {
        batch_window: Duration::from_millis(2),
        max_batch: 32,
        // Tight enough that a 200-client burst actually sheds.
        queue_capacity: 32,
        retry_after_ms: 10,
        ..ServerConfig::default()
    });
    if chaos {
        builder = builder.faults(FaultPlan::chaos(seed));
    }
    for (name, forest) in &models {
        builder = builder
            .register(
                *name,
                forest,
                CompileOptions::default(),
                ModelForm::Encrypted,
            )
            .expect("model compiles");
    }
    let handle = builder
        .bind("127.0.0.1:0")
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let addr = handle.addr();

    let wall = Stopwatch::start();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let backend = Arc::clone(&backend);
            let (name, forest) = &models[c % models.len()];
            let name = *name;
            let queries_for_client = microbench::random_queries(forest, queries, c as u64 + 7);
            let expected: Vec<Vec<bool>> = queries_for_client
                .iter()
                .map(|q| forest.classify_leaf_hits(q))
                .collect();
            std::thread::Builder::new()
                .name(format!("soak-{c}"))
                .spawn(move || {
                    let policy = RetryPolicy {
                        max_attempts: 6,
                        base_backoff: Duration::from_millis(2),
                        max_backoff: Duration::from_millis(100),
                        jitter_seed: seed ^ c as u64,
                    };
                    let mut tally = ClientTally {
                        served: 0,
                        shed: 0,
                        expired: 0,
                        failed: 0,
                        retries: 0,
                        latencies: Vec::with_capacity(queries_for_client.len()),
                    };
                    let mut client = None;
                    for attempt in 0..30 {
                        match InferenceClient::connect_with(
                            addr,
                            Arc::clone(&backend),
                            name,
                            policy,
                        ) {
                            Ok(c) => {
                                client = Some(c);
                                break;
                            }
                            Err(_) if attempt < 29 => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(e) => panic!("soak client could not connect: {e}"),
                        }
                    }
                    let mut client = client.expect("connected");
                    // Every 8th client runs with a tight deadline so
                    // the in-queue expiry path sees load too.
                    if c % 8 == 7 {
                        client.set_deadline(Some(Duration::from_millis(1)));
                    }
                    for (q, want) in queries_for_client.iter().zip(&expected) {
                        let timer = Stopwatch::start();
                        match client.classify(q) {
                            Ok(served) => {
                                assert_eq!(
                                    &served.outcome.leaf_hits().to_bools(),
                                    want,
                                    "wrong answer under soak for {name} {q:?}"
                                );
                                tally.latencies.push(timer.elapsed());
                                tally.served += 1;
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => tally.shed += 1,
                            Err(e) if e.to_string().contains("expired") => tally.expired += 1,
                            Err(_) => tally.failed += 1,
                        }
                    }
                    tally.retries = client.total_retries();
                    tally
                })
                .expect("spawn soak client")
        })
        .collect();

    let mut served = 0u64;
    let mut shed = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    let mut retried = 0u64;
    let mut latencies: Vec<Duration> = Vec::new();
    for t in threads {
        let tally = t.join().expect("soak client thread must not panic");
        served += tally.served;
        shed += tally.shed;
        expired += tally.expired;
        failed += tally.failed;
        retried += tally.retries;
        latencies.extend(tally.latencies);
    }
    let elapsed = wall.elapsed();
    let total = (clients * queries) as u64;
    assert_eq!(
        served + shed + expired + failed,
        total,
        "every query accounted for"
    );
    assert!(served > 0, "a soak that serves nothing measured nothing");

    let snap = handle.stats().snapshot();
    handle.shutdown();

    latencies.sort_unstable();
    let p50 = percentile_ms(&latencies, 50);
    let p99 = percentile_ms(&latencies, 99);
    let json = format!(
        "{{\n  \"clients\": {clients},\n  \"queries_per_client\": {queries},\n  \
         \"chaos\": {chaos},\n  \"seed\": {seed},\n  \"served\": {served},\n  \
         \"shed\": {shed},\n  \"expired\": {expired},\n  \"failed\": {failed},\n  \
         \"retried\": {retried},\n  \"p50_ms\": {p50:.3},\n  \"p99_ms\": {p99:.3},\n  \
         \"wall_seconds\": {:.3},\n  \"server_queries_served\": {},\n  \
         \"server_queries_shed\": {},\n  \"server_queries_expired\": {}\n}}\n",
        elapsed.as_secs_f64(),
        snap.queries_served,
        snap.queries_shed,
        snap.queries_expired,
    );
    std::fs::write(&out, &json).expect("write soak JSON");
    println!(
        "soak: {clients} clients x {queries} queries in {:.2}s — served {served}, shed {shed}, \
         expired {expired}, failed {failed}, retried {retried}, p50 {p50:.2} ms, p99 {p99:.2} ms",
        elapsed.as_secs_f64()
    );
    println!("wrote {out}");
}
