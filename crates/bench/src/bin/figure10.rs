//! Regenerates paper Figure 10: per-stage runtime breakdowns (depth,
//! branching, precision sweeps).
use copse_bench::{queries_from_args, reports, SUITE_SEED, WORK_PER_OP};

fn main() {
    println!(
        "{}",
        reports::figure10(SUITE_SEED, queries_from_args(), WORK_PER_OP)
    );
}
