//! The release-mode bench smoke: measures the `ring_mul` / `rotate` /
//! `key_switch` / `mat_vec` kernel medians at demo parameters, prints
//! the rotate/key-switch exhibit, and writes `BENCH_kernels.json` (the
//! same document `reproduce_all --json` emits) so CI and the per-PR
//! perf trajectory share one machine-readable format.
//!
//! `--reps N` controls samples per point (default 3, median reported).
use copse_bench::{arg_value, reports};

fn main() {
    let reps = arg_value("--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let kernels = reports::measure_kernels(reps);
    print!("{}", reports::rotate_keyswitch(&kernels));
    std::fs::write("BENCH_kernels.json", reports::kernels_json(&kernels))
        .expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json ({reps} reps per point)");
}
