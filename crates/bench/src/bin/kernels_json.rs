//! The release-mode bench smoke: measures the `ring_mul` / `rotate` /
//! `key_switch` / `mat_vec` kernel medians at demo parameters — each
//! hot kernel in its single-thread form *and* forked across the shared
//! `copse-pool` worker runtime — prints the rotate/key-switch exhibit,
//! and writes `BENCH_kernels.json` (the same document `reproduce_all
//! --json` emits) so CI and the per-PR perf trajectory share one
//! machine-readable format. The document records the parallel degree
//! and the host's core count alongside the medians: a 4-thread median
//! is only meaningful relative to the hardware it ran on.
//!
//! Flags: `--reps N` samples per point (default 3, median reported);
//! `--threads T` parallel degree for the threaded medians (default 4);
//! `--out PATH` output path (default `BENCH_kernels.json`).
use copse_bench::{arg_value, reports};

fn main() {
    let reps = arg_value("--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_kernels.json".into());
    let kernels = reports::measure_kernels(reps, threads);
    print!("{}", reports::rotate_keyswitch(&kernels));
    std::fs::write(&out, reports::kernels_json(&kernels)).expect("write kernel medians JSON");
    println!("\nwrote {out} ({reps} reps per point, {threads}-thread parallel medians)");
}
