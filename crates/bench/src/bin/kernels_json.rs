//! The release-mode bench smoke: measures the `ring_mul` / `rotate` /
//! `key_switch` / `mat_vec` kernel medians at demo parameters — each
//! hot kernel in its single-thread form *and* forked across the shared
//! `copse-pool` worker runtime — plus the cross-query packing
//! throughput sweep (packed vs stage-major queries/second at batch
//! sizes {1, 4, 16, lanes}), prints the rotate/key-switch and packing
//! exhibits, and writes `BENCH_kernels.json` (the same document
//! `reproduce_all --json` emits) so CI and the per-PR perf trajectory
//! share one machine-readable format. The document records the
//! parallel degree and the host's core count alongside the medians: a
//! 4-thread median is only meaningful relative to the hardware it ran
//! on.
//!
//! The binary is self-verifying the way the other artifact writers
//! are: it refuses to emit a document in which the packed path loses
//! to the stage-major loop at batch 16 — that regression means the
//! packed branch stopped engaging (or stopped helping), and CI should
//! go red rather than archive the evidence silently.
//!
//! Flags: `--reps N` samples per point (default 3, median reported);
//! `--threads T` parallel degree for the threaded medians (default 4);
//! `--out PATH` output path (default `BENCH_kernels.json`).
use copse_bench::{arg_value, reports};

fn main() {
    let reps = arg_value("--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let threads = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_kernels.json".into());
    let kernels = reports::measure_kernels(reps, threads);
    print!("{}", reports::rotate_keyswitch(&kernels));
    let packing = reports::measure_packing(reps);
    println!("{}", reports::packing_text(&packing));
    let at16 = packing
        .point_at(16)
        .expect("the sweep always measures batch 16");
    assert!(
        at16.packed_qps > at16.stage_major_qps,
        "packing regression: packed @ batch 16 ({:.1} q/s) is not faster than \
         stage-major ({:.1} q/s) — the packed path stopped engaging or stopped paying",
        at16.packed_qps,
        at16.stage_major_qps,
    );
    std::fs::write(&out, reports::kernels_json(&kernels, &packing))
        .expect("write kernel medians JSON");
    println!("\nwrote {out} ({reps} reps per point, {threads}-thread parallel medians)");
}
