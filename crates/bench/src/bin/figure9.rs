//! Regenerates paper Figure 9: plaintext-model vs encrypted-model inference.
use copse_bench::{queries_from_args, reports, SUITE_SEED, WORK_PER_OP};

fn main() {
    println!(
        "{}",
        reports::figure9(SUITE_SEED, queries_from_args(), WORK_PER_OP)
    );
}
