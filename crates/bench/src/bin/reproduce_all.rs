//! Runs every table and figure harness and emits an
//! EXPERIMENTS.md-ready report on stdout. With `--json`, also writes
//! the kernel medians to `BENCH_kernels.json` so the perf trajectory
//! is machine-readable across PRs.
use copse_bench::{queries_from_args, reports, threads_from_args, SUITE_SEED, WORK_PER_OP};

fn main() {
    let n = queries_from_args();
    let threads = threads_from_args();
    let json = std::env::args().any(|a| a == "--json");
    println!("# COPSE reproduction report\n");
    println!(
        "suite seed {SUITE_SEED}, {n} queries per model, {threads} threads for parallel runs\n"
    );
    println!("{}", reports::table6(SUITE_SEED));
    println!("{}", reports::table1_2(SUITE_SEED));
    println!("{}", reports::table3_4());
    println!("{}", reports::table5(SUITE_SEED));
    println!("{}", reports::figure6(SUITE_SEED, n, WORK_PER_OP));
    println!("{}", reports::figure7(SUITE_SEED, n, threads, WORK_PER_OP));
    println!("{}", reports::figure8(SUITE_SEED, n, threads, WORK_PER_OP));
    println!("{}", reports::figure9(SUITE_SEED, n, WORK_PER_OP));
    println!("{}", reports::figure10(SUITE_SEED, n, WORK_PER_OP));
    println!("{}", reports::ablations(SUITE_SEED, n, WORK_PER_OP));
    println!("{}", reports::ring_mul());
    let kernels = reports::measure_kernels(5, 4);
    println!("{}", reports::rotate_keyswitch(&kernels));
    let packing = reports::measure_packing(5);
    println!("{}", reports::packing_text(&packing));
    if json {
        std::fs::write(
            "BENCH_kernels.json",
            reports::kernels_json(&kernels, &packing),
        )
        .expect("write BENCH_kernels.json");
        eprintln!("wrote BENCH_kernels.json");
    }
}
