//! Ablation studies: reshuffle fusion, accumulation strategy, sparse
//! plaintext diagonals.
use copse_bench::{queries_from_args, reports, SUITE_SEED, WORK_PER_OP};

fn main() {
    println!(
        "{}",
        reports::ablations(SUITE_SEED, queries_from_args(), WORK_PER_OP)
    );
}
