//! Regenerates paper Tables 3-4: per-party information leakage.
use copse_bench::reports;

fn main() {
    println!("{}", reports::table3_4());
}
