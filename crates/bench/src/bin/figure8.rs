//! Regenerates paper Figure 8: COPSE vs Aloufi et al., both multithreaded.
use copse_bench::{queries_from_args, reports, threads_from_args, SUITE_SEED, WORK_PER_OP};

fn main() {
    println!(
        "{}",
        reports::figure8(
            SUITE_SEED,
            queries_from_args(),
            threads_from_args(),
            WORK_PER_OP
        )
    );
}
