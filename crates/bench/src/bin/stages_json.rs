//! The stage-timing exhibit: measures per-stage wall-clock medians of
//! one batched evaluation pass (the timing half of Figure 10) and the
//! disabled-span overhead against the `mat_vec` kernel, prints the
//! text exhibit, and writes two machine-readable artifacts:
//!
//! * `BENCH_stages.json` — the four stage medians plus the overhead
//!   measurement;
//! * `BENCH_trace.json` — a Chrome trace-event document of one traced
//!   pass, loadable in `chrome://tracing` or `ui.perfetto.dev`.
//!
//! Flags: `--reps N` samples per median (default 5); `--threads T`
//! parallel degree (default 1); `--out PATH` stage-medians output path
//! (default `BENCH_stages.json`; the Chrome trace lands next to it as
//! `BENCH_trace.json`).
use copse_bench::{arg_value, reports};

fn main() {
    let reps = arg_value("--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let threads = arg_value("--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_stages.json".into());
    let trace_out = std::path::Path::new(&out)
        .with_file_name("BENCH_trace.json")
        .to_string_lossy()
        .into_owned();

    let stages = reports::measure_stages(reps, threads);
    print!("{}", reports::stages_text(&stages));
    std::fs::write(&out, reports::stages_json(&stages)).expect("write stage medians JSON");

    let chrome = reports::capture_chrome_trace(threads);
    std::fs::write(&trace_out, chrome).expect("write Chrome trace JSON");
    println!("\nwrote {out} and {trace_out} ({reps} reps, {threads} threads)");
}
