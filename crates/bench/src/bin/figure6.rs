//! Regenerates paper Figure 6: single-threaded COPSE vs Aloufi et al.
use copse_bench::{queries_from_args, reports, SUITE_SEED, WORK_PER_OP};

fn main() {
    println!(
        "{}",
        reports::figure6(SUITE_SEED, queries_from_args(), WORK_PER_OP)
    );
}
