//! The static-analysis artifact: runs `copse-analyze` over every zoo
//! model in both forms, cross-checks each prediction op-for-op against
//! one metered evaluation, and writes `BENCH_analysis.json` with the
//! per-circuit depth profile, exact operation counts, minimum slot
//! capacity, modeled HElib cost, and the admission verdict against
//! the default clear profile. Exits nonzero (panics) if any static
//! prediction disagrees with the meter — CI uses this as the
//! analyzer's smoke test.
//!
//! Flags: `--seed N` zoo seed (default 2021); `--out PATH` output
//! path (default `BENCH_analysis.json`).
use copse_bench::{arg_value, reports};

fn main() {
    let seed = arg_value("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2021);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_analysis.json".into());

    let json = reports::analysis_json(seed);
    std::fs::write(&out, &json).expect("write analysis JSON");
    print!("{json}");
    println!("wrote {out} (seed {seed})");
}
