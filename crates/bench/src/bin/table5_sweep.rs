//! Regenerates paper Table 5: the encryption parameter sweep.
use copse_bench::{reports, SUITE_SEED};

fn main() {
    println!("{}", reports::table5(SUITE_SEED));
}
