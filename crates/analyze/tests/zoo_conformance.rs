//! The analyzer's honesty suite: for every model in the benchmark
//! zoo, the static per-stage predictions must equal the scoped
//! [`OpMeter`](copse_fhe::OpMeter) measurements **op-for-op**, and the
//! predicted multiplicative depth must equal the depth the clear
//! backend observes on the result ciphertext.
//!
//! This is the property that turns the admission check from a
//! heuristic into a proof: if the static counts are exact on every
//! shape we ship, a deploy-time rejection is a statement about the
//! circuit, not a guess.

use copse_analyze::{AdmissionIssue, BackendProfile, CircuitReport, EvalShape, PackedPlanShape};
use copse_core::compiler::CompileOptions;
use copse_core::runtime::{Diane, EvalOptions, Maurice, ModelForm, PackPlan, Sally};
use copse_fhe::{ClearBackend, ClearConfig, FheBackend, OpCounts};
use copse_forest::microbench::random_queries;
use copse_forest::zoo;

const SUITE_SEED: u64 = 2021;

/// Runs one traced classification and returns the measured per-stage
/// ops alongside the result depth.
fn measure(
    maurice: &Maurice,
    form: ModelForm,
    eval: EvalOptions,
    n_queries: usize,
    forest: &copse_forest::model::Forest,
) -> ([OpCounts; 4], u32, OpCounts) {
    let be = ClearBackend::with_defaults();
    let before = be.meter().snapshot();
    let deployed = maurice.deploy(&be, form);
    let deploy_ops = be.meter().snapshot().since(&before);
    let sally = Sally::with_options(&be, deployed, eval);
    let diane = Diane::new(&be, maurice.public_query_info());
    let queries: Vec<_> = random_queries(forest, n_queries, SUITE_SEED ^ 0xACE)
        .iter()
        .map(|q| diane.encrypt_features(q).expect("valid query"))
        .collect();
    let (results, trace) = sally.classify_batch_traced(&queries);
    (
        [
            trace.comparison.ops,
            trace.reshuffle.ops,
            trace.levels.ops,
            trace.accumulate.ops,
        ],
        be.depth(results[0].ciphertext()),
        deploy_ops,
    )
}

/// Per-stage scaling of a report to an `n`-query batch.
fn scaled(report: &CircuitReport, n: u64) -> [OpCounts; 4] {
    let times = |ops: OpCounts| -> OpCounts {
        let mut out = OpCounts::default();
        for op in copse_fhe::FheOp::ALL {
            *out.get_mut(op) = n * ops.get(op);
        }
        out
    };
    [
        times(report.comparison.ops),
        times(report.reshuffle.ops),
        times(report.levels.ops),
        times(report.accumulate.ops),
    ]
}

#[test]
fn static_prediction_matches_the_meter_for_every_zoo_model() {
    for model in zoo::paper_suite(SUITE_SEED) {
        for form in [ModelForm::Plain, ModelForm::Encrypted] {
            let maurice =
                Maurice::compile(&model.forest, CompileOptions::default()).expect("compile");
            let shape = EvalShape::plan(&maurice, form);
            let report = CircuitReport::analyze(maurice.compiled(), &shape);

            let (measured, observed_depth, deploy_ops) =
                measure(&maurice, form, EvalOptions::default(), 1, &model.forest);
            let predicted = [
                report.comparison.ops,
                report.reshuffle.ops,
                report.levels.ops,
                report.accumulate.ops,
            ];
            for (stage, (p, m)) in ["comparison", "reshuffle", "levels", "accumulate"]
                .iter()
                .zip(predicted.iter().zip(measured.iter()))
            {
                assert_eq!(p, m, "{} {form:?}: {stage} stage ops", model.name);
            }
            assert_eq!(
                observed_depth, report.depth,
                "{} {form:?}: result depth",
                model.name
            );
            assert_eq!(
                deploy_ops.encrypt, report.model_encrypt_ops.encrypt,
                "{} {form:?}: deploy encrypts",
                model.name
            );
        }
    }
}

#[test]
fn fused_pipelines_conform_too() {
    for model in zoo::paper_suite(SUITE_SEED).into_iter().take(3) {
        let options = CompileOptions {
            fuse_reshuffle: true,
            ..CompileOptions::default()
        };
        let maurice = Maurice::compile(&model.forest, options).expect("compile");
        let shape = EvalShape::plan(&maurice, ModelForm::Plain);
        let report = CircuitReport::analyze(maurice.compiled(), &shape);
        assert!(maurice.compiled().fused);
        assert_eq!(report.reshuffle.ops, OpCounts::default());

        let (measured, observed_depth, _) = measure(
            &maurice,
            ModelForm::Plain,
            EvalOptions::default(),
            1,
            &model.forest,
        );
        assert_eq!(measured[0], report.comparison.ops, "{}", model.name);
        assert_eq!(measured[1], OpCounts::default(), "{}", model.name);
        assert_eq!(measured[2], report.levels.ops, "{}", model.name);
        assert_eq!(measured[3], report.accumulate.ops, "{}", model.name);
        assert_eq!(observed_depth, report.depth, "{}", model.name);
    }
}

#[test]
fn batches_scale_each_stage_linearly() {
    let model = &zoo::paper_suite(SUITE_SEED)[0];
    let maurice = Maurice::compile(&model.forest, CompileOptions::default()).expect("compile");
    let shape = EvalShape::plan(&maurice, ModelForm::Encrypted);
    let report = CircuitReport::analyze(maurice.compiled(), &shape);
    let (measured, _, _) = measure(
        &maurice,
        ModelForm::Encrypted,
        EvalOptions::default(),
        3,
        &model.forest,
    );
    assert_eq!(measured, scaled(&report, 3));
}

/// Runs one traced **packed** batch of exactly `lanes` queries (one
/// full chunk) on a capacity-bounded clear backend and returns the
/// measured per-stage ops, the observed result depth, and the plan the
/// runtime actually used.
fn measure_packed(
    maurice: &Maurice,
    form: ModelForm,
    lanes: usize,
    forest: &copse_forest::model::Forest,
) -> ([OpCounts; 4], u32, PackPlan) {
    // Probe with unbounded capacity to learn the model's stride, then
    // bound the real backend to exactly `lanes` strides.
    let probe_be = ClearBackend::new(ClearConfig {
        slot_capacity: Some(1 << 20),
        ..ClearConfig::default()
    });
    let stride = Sally::host(&probe_be, maurice.deploy(&probe_be, form))
        .pack_plan()
        .expect("probe capacity fits")
        .stride;
    let be = ClearBackend::new(ClearConfig {
        slot_capacity: Some(lanes * stride),
        ..ClearConfig::default()
    });
    let sally = Sally::host(&be, maurice.deploy(&be, form));
    // Warm before measuring: tiling the model is one-time deploy-like
    // work, and the prediction is the steady-state per-chunk cost.
    let plan = sally.warm_packed().expect("lanes fit by construction");
    assert_eq!(plan.lanes, lanes);
    let diane = Diane::new(&be, maurice.public_query_info());
    let queries: Vec<_> = random_queries(forest, lanes, SUITE_SEED ^ 0xBEE)
        .iter()
        .map(|q| diane.encrypt_features(q).expect("valid query"))
        .collect();
    let (results, trace) = sally.classify_batch_traced(&queries);
    assert_eq!(
        trace.packed_sizes,
        vec![lanes as u32; lanes],
        "one full chunk"
    );
    (
        [
            trace.comparison.ops,
            trace.reshuffle.ops,
            trace.levels.ops,
            trace.accumulate.ops,
        ],
        be.depth(results[0].ciphertext()),
        plan,
    )
}

#[test]
fn packed_shapes_conform_op_for_op() {
    for model in zoo::paper_suite(SUITE_SEED) {
        for form in [ModelForm::Plain, ModelForm::Encrypted] {
            let maurice =
                Maurice::compile(&model.forest, CompileOptions::default()).expect("compile");
            let (measured, observed_depth, plan) = measure_packed(&maurice, form, 3, &model.forest);
            let shape = EvalShape {
                packing: Some(plan.into()),
                ..EvalShape::plan(&maurice, form)
            };
            let report = CircuitReport::analyze(maurice.compiled(), &shape);
            let predicted = [
                report.comparison.ops,
                report.reshuffle.ops,
                report.levels.ops,
                report.accumulate.ops,
            ];
            for (stage, (p, m)) in ["comparison", "reshuffle", "levels", "accumulate"]
                .iter()
                .zip(predicted.iter().zip(measured.iter()))
            {
                assert_eq!(p, m, "{} {form:?}: packed {stage} stage ops", model.name);
            }
            assert_eq!(
                observed_depth, report.depth,
                "{} {form:?}: packed result depth",
                model.name
            );
        }
    }
}

#[test]
fn admission_rejects_a_pack_exceeding_capacity() {
    let model = &zoo::paper_suite(SUITE_SEED)[0];
    let maurice = Maurice::compile(&model.forest, CompileOptions::default()).expect("compile");
    let sequential = CircuitReport::analyze(
        maurice.compiled(),
        &EvalShape::plan(&maurice, ModelForm::Plain),
    );
    let stride = sequential.min_slot_capacity;
    let shape = EvalShape {
        packing: Some(PackedPlanShape { lanes: 4, stride }),
        ..EvalShape::plan(&maurice, ModelForm::Plain)
    };
    let report = CircuitReport::analyze(maurice.compiled(), &shape);
    assert_eq!(report.min_slot_capacity, 4 * stride);
    assert_eq!(report.depth, sequential.depth + 1, "unpack mask level");

    // The exact pack fits...
    let fits = BackendProfile {
        depth_budget: report.depth,
        slot_capacity: Some(4 * stride),
        supports_slot_rotation: true,
    };
    assert!(report.admit(&fits).is_empty());
    // ...one slot less and admission rejects the pack with numbers.
    let narrow = BackendProfile {
        slot_capacity: Some(4 * stride - 1),
        ..fits
    };
    assert_eq!(
        report.admit(&narrow),
        vec![AdmissionIssue::SlotCapacityExceeded {
            required: 4 * stride,
            available: 4 * stride - 1,
        }]
    );
}

#[test]
fn result_shuffle_prediction_conforms() {
    let model = &zoo::paper_suite(SUITE_SEED)[1];
    let maurice = Maurice::compile(&model.forest, CompileOptions::default()).expect("compile");
    let shape = EvalShape {
        result_shuffle: true,
        ..EvalShape::plan(&maurice, ModelForm::Plain)
    };
    let report = CircuitReport::analyze(maurice.compiled(), &shape);
    let eval = EvalOptions {
        shuffle_seed: Some(0xC0FFEE),
        ..EvalOptions::default()
    };
    let (measured, observed_depth, _) = measure(&maurice, ModelForm::Plain, eval, 1, &model.forest);
    assert_eq!(measured[3], report.accumulate.ops, "shuffled accumulate");
    assert_eq!(observed_depth, report.depth, "shuffled depth");
}
