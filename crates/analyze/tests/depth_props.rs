//! Depth-soundness properties for the static analyzer.
//!
//! * On the **clear backend** — which counts multiplicative depth
//!   exactly, with no noise model in the way — the predicted depth is
//!   not just an upper bound but *equal* to the observed depth, for
//!   random forests across the paper's whole depth range (2–8).
//! * On the **leveled BGV backend** the analyzer's claim is the
//!   admission contract: any circuit the analyzer admits against
//!   [`BackendProfile::of`] must evaluate without exhausting the
//!   modulus chain, decrypt correctly, and consume at most two chain
//!   primes per predicted multiplicative level (a multiply spends one
//!   prime, plus at most one more for the key-switch rescale).

use std::sync::OnceLock;

use copse_analyze::{BackendProfile, CircuitReport, EvalShape};
use copse_core::compiler::CompileOptions;
use copse_core::runtime::{Diane, Maurice, ModelForm, Sally};
use copse_fhe::{BgvBackend, BgvParams, ClearBackend, FheBackend};
use copse_forest::microbench::{self, MicrobenchSpec};
use proptest::prelude::*;

fn spec(max_depth: u32, precision: u32, n_trees: usize, branches: usize) -> MicrobenchSpec {
    MicrobenchSpec {
        name: "prop",
        max_depth,
        precision,
        n_trees,
        branches,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Clear backend: predicted depth is exact (hence sound) for
    /// random forests across depths 2..=8, both model forms, both
    /// pipeline shapes.
    #[test]
    fn predicted_depth_is_exact_on_the_clear_backend(
        max_depth in 2u32..=8,
        precision in 2u32..=6,
        n_trees in 1usize..=3,
        extra_branches in 0usize..=6,
        seed in 0u64..1024,
        mode in 0u8..4,
    ) {
        let (encrypted, fused) = (mode & 1 != 0, mode & 2 != 0);
        // Each tree needs at least `max_depth` branches to reach the
        // requested depth, and at most `2^max_depth - 1` to fit it.
        let per_tree = (max_depth as usize + extra_branches)
            .min((1usize << max_depth) - 1);
        let branches = n_trees * per_tree;
        let forest = microbench::generate(
            &spec(max_depth, precision, n_trees, branches),
            seed,
        );
        let form = if encrypted { ModelForm::Encrypted } else { ModelForm::Plain };
        let options = CompileOptions { fuse_reshuffle: fused, ..CompileOptions::default() };
        let maurice = Maurice::compile(&forest, options).expect("compile");
        let report = CircuitReport::analyze(
            maurice.compiled(),
            &EvalShape::plan(&maurice, form),
        );

        let be = ClearBackend::with_defaults();
        let sally = Sally::host(&be, maurice.deploy(&be, form));
        let diane = Diane::new(&be, maurice.public_query_info());
        let query = diane
            .encrypt_features(&microbench::random_queries(&forest, 1, seed ^ 0xD0)[0])
            .expect("valid query");
        let result = sally.classify(&query);
        prop_assert_eq!(be.depth(result.ciphertext()), report.depth);
    }
}

/// BGV keygen is the expensive part; share one cyclic tiny backend
/// (6 slots, depth budget 4) across all admitted shapes.
fn tiny_bgv() -> &'static BgvBackend {
    static BE: OnceLock<BgvBackend> = OnceLock::new();
    BE.get_or_init(|| BgvBackend::new(BgvParams::tiny()))
}

#[test]
fn admitted_circuits_fit_the_bgv_chain() {
    let be = tiny_bgv();
    let profile = BackendProfile::of(be);
    assert_eq!(profile.depth_budget, 4);
    assert_eq!(profile.slot_capacity, Some(6));

    let mut admitted = 0usize;
    let mut rejected = 0usize;
    for (max_depth, precision, branches) in [
        (1u32, 1u32, 1usize),
        (1, 2, 1),
        (2, 1, 2),
        (2, 2, 3),
        (3, 1, 3),
        (4, 1, 4),
        (4, 2, 5),
        (6, 3, 8),
    ] {
        for fused in [false, true] {
            let forest = microbench::generate(&spec(max_depth, precision, 1, branches), 11);
            let options = CompileOptions {
                fuse_reshuffle: fused,
                ..CompileOptions::default()
            };
            let maurice = Maurice::compile(&forest, options).expect("compile");
            let shape = EvalShape::plan(&maurice, ModelForm::Plain);
            let report = CircuitReport::analyze(maurice.compiled(), &shape);
            if !report.admit(&profile).is_empty() {
                rejected += 1;
                continue;
            }
            admitted += 1;

            // Ground truth from the exact clear evaluator.
            let clear = ClearBackend::with_defaults();
            let c_sally = Sally::host(&clear, maurice.deploy(&clear, ModelForm::Plain));
            let c_diane = Diane::new(&clear, maurice.public_query_info());
            let features = microbench::random_queries(&forest, 1, 99)[0].clone();
            let expected = c_diane
                .decrypt_result(&c_sally.classify(&c_diane.encrypt_features(&features).unwrap()));

            let sally = Sally::host(be, maurice.deploy(be, ModelForm::Plain));
            let diane = Diane::new(be, maurice.public_query_info());
            let result = sally.classify(&diane.encrypt_features(&features).unwrap());
            let observed = be.depth(result.ciphertext());

            // Sound: the chain never runs dry on an admitted circuit,
            // and consumption stays within two primes per predicted
            // level (multiply + key-switch rescale).
            assert!(
                observed <= 2 * report.depth,
                "d={max_depth} p={precision} fused={fused}: consumed {observed} primes \
                 for predicted depth {}",
                report.depth
            );
            let outcome = diane.decrypt_result(&result);
            assert_eq!(
                outcome.plurality_label(),
                expected.plurality_label(),
                "d={max_depth} p={precision} fused={fused}: decryption diverged"
            );
        }
    }
    // The fixture must exercise both sides of the admission check.
    assert!(admitted >= 3, "only {admitted} shapes admitted");
    assert!(rejected >= 1, "no shape stressed the rejection path");
}
