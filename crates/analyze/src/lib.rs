//! # copse-analyze — static circuit analysis for compiled COPSE models
//!
//! The COPSE pipeline is a *fixed* circuit per compiled model: its
//! operation counts and multiplicative depth depend only on the model
//! shape and the evaluation plan, never on the (encrypted) query data.
//! That makes the whole evaluation statically analysable, and this
//! crate is the abstract interpreter that does it:
//!
//! * [`CircuitReport::analyze`] walks the compiled artifacts and
//!   derives, per pipeline stage, the exact homomorphic operation
//!   counts (in the [`FheOp`](copse_fhe::FheOp) vocabulary) and the
//!   multiplicative-depth profile of one classification. "Exact" is a
//!   tested property, not an aspiration: the conformance suite asserts
//!   these predictions against a scoped [`copse_fhe::OpMeter`]
//!   op-for-op for every model in the benchmark zoo.
//! * [`BackendProfile::of`] captures what a concrete
//!   [`FheBackend`] can actually evaluate —
//!   its depth budget, slot capacity, and whether slot rotation exists
//!   at all (the negacyclic power-of-two ring has no GF(2) slot
//!   structure, paper §4.1 vs. the `X^n + 1` ablation).
//! * [`CircuitReport::admit`] compares the two and returns structured
//!   [`AdmissionIssue`]s. `copse-server` runs this check on every
//!   deploy, so a model that would exhaust the modulus chain mid-query
//!   or panic on a rotation-free ring is rejected with a typed
//!   diagnostic *before* any ciphertext is touched.
//!
//! The per-stage predictions line up with the runtime's
//! [`EvalTrace`](copse_core::EvalTrace) stages (comparison, reshuffle,
//! levels, accumulate), so measured and predicted breakdowns can be
//! compared side by side; `copse-bench`'s `analyze_json` binary emits
//! exactly that report.
//!
//! ## Example
//!
//! ```
//! use copse_analyze::{BackendProfile, CircuitReport, EvalShape};
//! use copse_core::{CompileOptions, Maurice, ModelForm};
//! use copse_fhe::ClearBackend;
//! use copse_forest::microbench::{self, MicrobenchSpec};
//!
//! let spec = MicrobenchSpec { name: "doc", max_depth: 3, precision: 4, n_trees: 2, branches: 9 };
//! let forest = microbench::generate(&spec, 42);
//! let maurice = Maurice::compile(&forest, CompileOptions::default()).unwrap();
//! let shape = EvalShape::plan(&maurice, ModelForm::Plain);
//! let report = CircuitReport::analyze(maurice.compiled(), &shape);
//!
//! let backend = ClearBackend::with_defaults();
//! assert!(report.admit(&BackendProfile::of(&backend)).is_empty());
//! assert!(report.depth >= 2);
//! ```

#![warn(missing_docs)]

use copse_core::artifacts::CompiledModel;
use copse_core::compiler::Accumulation;
use copse_core::complexity::{log2ceil, ours, CostInputs};
use copse_core::runtime::ModelForm;
use copse_core::seccomp::SecCompVariant;
use copse_fhe::{CostModel, FheBackend, OpCounts};
use std::fmt;

/// The evaluation plan the analysis is performed against: everything
/// that affects circuit structure beyond the compiled artifacts
/// themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalShape {
    /// Plain or encrypted model artifacts.
    pub form: ModelForm,
    /// Accumulation strategy (fixed by Maurice at compile time).
    pub accumulation: Accumulation,
    /// SecComp strategy.
    pub comparator: SecCompVariant,
    /// Whether Sally scrambles results with her secret permutation
    /// (paper §7.2.2): one extra *plaintext* MatMul over the leaves.
    pub result_shuffle: bool,
    /// Cross-query slot packing, when the runtime evaluates `lanes`
    /// queries per ciphertext ([`copse_core::Sally::pack_plan`]).
    /// `None` analyses the sequential per-query circuit.
    pub packing: Option<PackedPlanShape>,
}

/// The packed-batch layout analysis runs against: one **full chunk**
/// of `lanes` queries sharing each ciphertext at block `stride`. The
/// resulting [`CircuitReport`] predicts the ops and depth of that one
/// chunk (amortised cost per query is the report divided by `lanes`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedPlanShape {
    /// Queries per packed ciphertext (`>= 2`; the runtime never packs
    /// a chunk of one).
    pub lanes: usize,
    /// Slots per query block (the sequential `min_slot_capacity`).
    pub stride: usize,
}

impl From<copse_core::PackPlan> for PackedPlanShape {
    fn from(plan: copse_core::PackPlan) -> Self {
        Self {
            lanes: plan.lanes,
            stride: plan.stride,
        }
    }
}

impl EvalShape {
    /// The plan the server uses for a deployed model: Maurice's
    /// compile-time accumulation choice, the default comparator, no
    /// result shuffling, and the sequential (unpacked) layout.
    pub fn plan(maurice: &copse_core::Maurice, form: ModelForm) -> Self {
        Self {
            form,
            accumulation: maurice.accumulation(),
            comparator: SecCompVariant::default(),
            result_shuffle: false,
            packing: None,
        }
    }
}

/// Predicted cost of one pipeline stage, per query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StagePrediction {
    /// Homomorphic operations the stage performs for one query.
    pub ops: OpCounts,
    /// Multiplicative levels the stage consumes.
    pub depth_cost: u32,
}

/// What a concrete backend can evaluate: the parameters admission
/// checks a [`CircuitReport`] against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendProfile {
    /// Multiplicative depth the backend supports before noise (or the
    /// clear backend's budget guard) exhausts a fresh ciphertext.
    pub depth_budget: u32,
    /// Slots per ciphertext (`None` = unbounded).
    pub slot_capacity: Option<usize>,
    /// Whether slot rotation exists at all. `false` only for the BGV
    /// scheme instantiated over the negacyclic power-of-two ring,
    /// which has no GF(2) slot structure to rotate.
    pub supports_slot_rotation: bool,
}

impl BackendProfile {
    /// Reads the profile off a live backend using only non-panicking
    /// introspection.
    pub fn of<B: FheBackend>(backend: &B) -> Self {
        Self {
            depth_budget: backend.depth_budget(),
            slot_capacity: backend.slot_capacity(),
            supports_slot_rotation: backend.supports_slot_rotation(),
        }
    }
}

/// One reason a circuit cannot run on a backend, with the numbers that
/// prove it. Produced by [`CircuitReport::admit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionIssue {
    /// The circuit consumes more multiplicative levels than the
    /// backend's modulus chain provides: evaluation would abort (clear
    /// backend) or decrypt to noise (BGV).
    DepthExceeded {
        /// Depth of the classification circuit.
        required: u32,
        /// Depth the backend supports.
        budget: u32,
    },
    /// The circuit rotates slots but the backend has no slot structure
    /// (negacyclic power-of-two ring).
    SlotRotationUnsupported {
        /// Rotations one classification would attempt.
        rotations: u64,
    },
    /// Some packed operand is wider than the backend's slot count.
    SlotCapacityExceeded {
        /// Widest operand the circuit packs.
        required: usize,
        /// Slots the backend provides.
        available: usize,
    },
}

impl fmt::Display for AdmissionIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionIssue::DepthExceeded { required, budget } => write!(
                f,
                "circuit depth {required} exceeds the backend depth budget {budget}"
            ),
            AdmissionIssue::SlotRotationUnsupported { rotations } => write!(
                f,
                "circuit needs {rotations} slot rotations but the backend has no slot structure"
            ),
            AdmissionIssue::SlotCapacityExceeded {
                required,
                available,
            } => write!(
                f,
                "circuit packs {required}-slot operands but the backend has {available} slots"
            ),
        }
    }
}

/// The static analysis of one compiled model under one evaluation
/// plan: per-stage operation counts, the depth profile, and the
/// capabilities the circuit requires of its backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitReport {
    /// The shape quantities the prediction was derived from.
    pub inputs: CostInputs,
    /// SecComp (pipeline step 1).
    pub comparison: StagePrediction,
    /// Reshuffle MatMul (step 2); zero when fused away.
    pub reshuffle: StagePrediction,
    /// All level MatMuls and mask XORs (step 3).
    pub levels: StagePrediction,
    /// Accumulation product, plus the optional result shuffle (step 4).
    pub accumulate: StagePrediction,
    /// Multiplicative depth of the full circuit (sum of the per-stage
    /// depth costs): what a fresh query ciphertext reaches by the
    /// result.
    pub depth: u32,
    /// Encrypt operations to deploy the model (zero for plaintext
    /// deployment).
    pub model_encrypt_ops: OpCounts,
    /// Encrypt operations per query (`p` bit planes).
    pub query_encrypt_ops: OpCounts,
    /// Widest packed operand (ciphertext or plaintext) the circuit
    /// touches: the slot count the backend must provide.
    pub min_slot_capacity: usize,
}

impl CircuitReport {
    /// Statically interprets the compiled pipeline: derives per-stage
    /// operation counts and depth from the artifacts that will
    /// actually be evaluated (matrix dimensions are read off the
    /// compiled matrices, not re-derived from metadata).
    pub fn analyze(model: &CompiledModel, shape: &EvalShape) -> Self {
        let meta = &model.meta;
        let inputs = CostInputs::from_meta(meta, shape.form, model.fused, shape.accumulation);
        let inputs = CostInputs {
            comparator: shape.comparator,
            ..inputs
        };

        let comparison = StagePrediction {
            ops: ours::seccomp_counts(meta.precision, shape.form, shape.comparator),
            depth_cost: ours::seccomp_depth(meta.precision, shape.comparator),
        };

        let reshuffle = if model.fused {
            StagePrediction::default()
        } else {
            StagePrediction {
                ops: ours::matmul_counts(model.reshuffle.cols(), shape.form),
                depth_cost: 1,
            }
        };

        let mut level_ops = OpCounts::default();
        for matrix in &model.levels {
            level_ops = level_ops.plus(&ours::matmul_counts(matrix.cols(), shape.form));
            match shape.form {
                ModelForm::Encrypted => level_ops.add += 1,
                ModelForm::Plain => level_ops.constant_add += 1,
            }
        }
        let levels = StagePrediction {
            ops: level_ops,
            depth_cost: u32::from(!model.levels.is_empty()),
        };

        let d = model.levels.len() as u32;
        let mut accumulate = StagePrediction {
            ops: ours::accumulate_counts(d),
            depth_cost: match shape.accumulation {
                Accumulation::BalancedTree => log2ceil(u64::from(d)),
                Accumulation::Linear => d.saturating_sub(1),
            },
        };
        if shape.result_shuffle {
            // Sally's permutation is her own secret: a plaintext MatMul
            // over the leaves regardless of the model form.
            accumulate.ops = accumulate
                .ops
                .plus(&ours::matmul_counts(meta.n_leaves, ModelForm::Plain));
            accumulate.depth_cost += 1;
        }

        let mut comparison = comparison;
        if let Some(packing) = shape.packing {
            // Packed chunk deltas over one sequential query's circuit
            // (every other op in the four stages is slot-wise or a
            // block kernel with identical metering, so the chunk costs
            // exactly one query plus these):
            // packing `lanes` operands into each of the `p` bit planes
            // costs `lanes - 1` alignment rotations and additions per
            // plane; splitting the result back out costs one masked
            // constant-multiply per lane plus a rotation for every
            // lane after the first — and one extra depth level.
            let k = packing.lanes as u64;
            comparison.ops.rotate += u64::from(meta.precision) * (k - 1);
            comparison.ops.add += u64::from(meta.precision) * (k - 1);
            accumulate.ops.constant_multiply += k;
            accumulate.ops.rotate += k - 1;
            accumulate.depth_cost += 1;
        }

        let mut min_slots = meta.quantized.max(meta.n_leaves);
        for plane in model.thresholds.planes() {
            min_slots = min_slots.max(plane.width());
        }
        if !model.fused {
            min_slots = min_slots
                .max(model.reshuffle.rows())
                .max(model.reshuffle.cols());
        }
        for matrix in &model.levels {
            min_slots = min_slots.max(matrix.rows()).max(matrix.cols());
        }
        for mask in &model.masks {
            min_slots = min_slots.max(mask.width());
        }
        if let Some(packing) = shape.packing {
            // A packed chunk needs all `lanes` blocks side by side.
            min_slots = min_slots.max(packing.lanes * packing.stride);
        }

        let depth = comparison.depth_cost
            + reshuffle.depth_cost
            + levels.depth_cost
            + accumulate.depth_cost;

        Self {
            inputs,
            comparison,
            reshuffle,
            levels,
            accumulate,
            depth,
            model_encrypt_ops: ours::model_encrypt_counts(&inputs),
            query_encrypt_ops: ours::query_encrypt_counts(meta.precision),
            min_slot_capacity: min_slots,
        }
    }

    /// Total homomorphic operations for one classification (sum of the
    /// four stages; encrypts excluded).
    pub fn total_ops(&self) -> OpCounts {
        self.comparison
            .ops
            .plus(&self.reshuffle.ops)
            .plus(&self.levels.ops)
            .plus(&self.accumulate.ops)
    }

    /// Slot rotations one classification performs.
    pub fn rotations(&self) -> u64 {
        self.total_ops().rotate
    }

    /// Modeled single-thread latency of one classification under a
    /// calibrated [`CostModel`], in milliseconds.
    pub fn modeled_ms(&self, cost: &CostModel) -> f64 {
        cost.modeled_ms(&self.total_ops())
    }

    /// Depth the backend has left over after this circuit, or `None`
    /// when the circuit does not fit.
    pub fn depth_headroom(&self, profile: &BackendProfile) -> Option<u32> {
        profile.depth_budget.checked_sub(self.depth)
    }

    /// Checks the circuit against a backend profile. An empty result
    /// admits the model; each issue carries the numbers that prove the
    /// mismatch. Issues are ordered most-fundamental first: a missing
    /// capability (rotation, slots) precedes the depth verdict.
    pub fn admit(&self, profile: &BackendProfile) -> Vec<AdmissionIssue> {
        let mut issues = Vec::new();
        let rotations = self.rotations();
        if rotations > 0 && !profile.supports_slot_rotation {
            issues.push(AdmissionIssue::SlotRotationUnsupported { rotations });
        }
        if let Some(available) = profile.slot_capacity {
            if self.min_slot_capacity > available {
                issues.push(AdmissionIssue::SlotCapacityExceeded {
                    required: self.min_slot_capacity,
                    available,
                });
            }
        }
        if self.depth > profile.depth_budget {
            issues.push(AdmissionIssue::DepthExceeded {
                required: self.depth,
                budget: profile.depth_budget,
            });
        }
        issues
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copse_core::{CompileOptions, Maurice};
    use copse_forest::microbench::{self, MicrobenchSpec};

    fn compiled(fused: bool) -> Maurice {
        let spec = MicrobenchSpec {
            name: "unit",
            max_depth: 3,
            precision: 5,
            n_trees: 2,
            branches: 11,
        };
        let forest = microbench::generate(&spec, 7);
        let options = CompileOptions {
            fuse_reshuffle: fused,
            ..CompileOptions::default()
        };
        Maurice::compile(&forest, options).expect("compile")
    }

    fn report(maurice: &Maurice, form: ModelForm) -> CircuitReport {
        CircuitReport::analyze(maurice.compiled(), &EvalShape::plan(maurice, form))
    }

    #[test]
    fn totals_agree_with_the_proven_closed_forms() {
        for fused in [false, true] {
            let maurice = compiled(fused);
            for form in [ModelForm::Plain, ModelForm::Encrypted] {
                let r = report(&maurice, form);
                assert_eq!(r.total_ops(), ours::classify_counts(&r.inputs));
                assert_eq!(r.depth, ours::classify_depth(&r.inputs));
                assert_eq!(r.model_encrypt_ops, ours::model_encrypt_counts(&r.inputs));
            }
        }
    }

    #[test]
    fn fused_pipeline_zeroes_the_reshuffle_stage() {
        let r = report(&compiled(true), ModelForm::Plain);
        assert_eq!(r.reshuffle, StagePrediction::default());
        let r = report(&compiled(false), ModelForm::Plain);
        assert!(r.reshuffle.ops.total_homomorphic() > 0);
        assert_eq!(r.reshuffle.depth_cost, 1);
    }

    #[test]
    fn result_shuffle_adds_one_plaintext_matmul() {
        let maurice = compiled(false);
        let base = report(&maurice, ModelForm::Encrypted);
        let shuffled = CircuitReport::analyze(
            maurice.compiled(),
            &EvalShape {
                result_shuffle: true,
                ..EvalShape::plan(&maurice, ModelForm::Encrypted)
            },
        );
        let leaves = maurice.compiled().meta.n_leaves as u64;
        let extra = shuffled.total_ops().since(&base.total_ops());
        assert_eq!(extra.constant_multiply, leaves);
        assert_eq!(extra.rotate, leaves - 1);
        assert_eq!(shuffled.depth, base.depth + 1);
    }

    #[test]
    fn admission_flags_each_capability_independently() {
        let maurice = compiled(false);
        let r = report(&maurice, ModelForm::Plain);

        let roomy = BackendProfile {
            depth_budget: r.depth,
            slot_capacity: Some(r.min_slot_capacity),
            supports_slot_rotation: true,
        };
        assert!(r.admit(&roomy).is_empty());
        assert_eq!(r.depth_headroom(&roomy), Some(0));

        let shallow = BackendProfile {
            depth_budget: r.depth - 1,
            ..roomy
        };
        assert_eq!(
            r.admit(&shallow),
            vec![AdmissionIssue::DepthExceeded {
                required: r.depth,
                budget: r.depth - 1,
            }]
        );
        assert_eq!(r.depth_headroom(&shallow), None);

        let narrow = BackendProfile {
            slot_capacity: Some(r.min_slot_capacity - 1),
            ..roomy
        };
        assert_eq!(
            r.admit(&narrow),
            vec![AdmissionIssue::SlotCapacityExceeded {
                required: r.min_slot_capacity,
                available: r.min_slot_capacity - 1,
            }]
        );

        let rotationless = BackendProfile {
            supports_slot_rotation: false,
            ..roomy
        };
        assert_eq!(
            r.admit(&rotationless),
            vec![AdmissionIssue::SlotRotationUnsupported {
                rotations: r.rotations(),
            }]
        );
    }

    #[test]
    fn issue_messages_carry_the_numbers() {
        let text = AdmissionIssue::DepthExceeded {
            required: 19,
            budget: 14,
        }
        .to_string();
        assert!(text.contains("19") && text.contains("14"), "{text}");
        let text = AdmissionIssue::SlotRotationUnsupported { rotations: 88 }.to_string();
        assert!(text.contains("88"), "{text}");
        let text = AdmissionIssue::SlotCapacityExceeded {
            required: 80,
            available: 6,
        }
        .to_string();
        assert!(text.contains("80") && text.contains("6"), "{text}");
    }

    #[test]
    fn min_slot_capacity_is_the_widest_artifact() {
        let maurice = compiled(false);
        let m = maurice.compiled();
        let r = report(&maurice, ModelForm::Plain);
        assert_eq!(
            r.min_slot_capacity,
            m.meta.quantized.max(m.meta.branches).max(m.meta.n_leaves)
        );
    }
}
