//! copse-pool — the shared worker-pool runtime.
//!
//! Every data-parallel loop in this workspace — per-prime residue rows
//! inside the BGV kernels, diagonals inside a Halevi–Shoup MatMul,
//! queries inside a server batch — used to either run serially or
//! spawn fresh scoped threads per call. This crate replaces both with
//! one **persistent, process-wide pool** of plain `std` threads (the
//! offline shim policy rules out rayon) and a scoped fork-join API on
//! top of it:
//!
//! * [`WorkerPool::scope_chunks`] — split `0..n` into at most `chunks`
//!   contiguous ranges and run a shared worker over them;
//! * [`WorkerPool::scope_indices`] — per-index map with the results
//!   flattened back into index order;
//! * [`WorkerPool::scope_chunks_mut`] — like `scope_chunks`, but each
//!   task additionally receives the matching disjoint sub-slice of a
//!   mutable buffer (in-place kernels such as pointwise
//!   multiply-accumulate).
//!
//! Two observability hooks ride on the same machinery:
//! [`WorkerPool::stats`] snapshots per-worker execution counters
//! (tasks executed, busy time, queue wait), and [`set_task_context`] /
//! [`with_task_context`] propagate an opaque per-task context from a
//! scoping thread to every task its scope forks — transitively
//! through nested scopes — which the meter layer uses to attribute
//! FHE ops back to the evaluation pass that forked them.
//!
//! ## Determinism contract
//!
//! Parallel execution must be **bitwise identical** to sequential
//! execution — `Parallelism::sequential()` stays the differential
//! oracle for every kernel built on this pool. The pool guarantees its
//! half of that contract structurally:
//!
//! * results are collected **in task order**, never in completion
//!   order — task `i` writes slot `i`, so the returned `Vec` is
//!   independent of scheduling;
//! * tasks receive **contiguous, disjoint** index ranges produced by
//!   [`chunk_ranges`], the same split for the same `(n, chunks)` pair
//!   on every call;
//! * the pool never reorders, duplicates, or drops a task.
//!
//! Callers owe the other half: chunked *reductions* must combine
//! partial results in chunk order (or use operations that are exactly
//! associative and commutative, as modular arithmetic is — floating
//! point is not).
//!
//! ## Panics, nesting, and the caller's role
//!
//! The scoping thread is itself a worker: it runs the first task
//! inline and then **helps** — executing queued tasks (from any scope)
//! until its own scope completes. That makes nested scopes
//! deadlock-free: a worker blocked on an inner scope drains the queue
//! instead of sleeping. A panicking task does not poison the pool; the
//! first panic payload is captured and re-thrown on the scoping thread
//! after every task of the scope has finished, matching
//! `std::thread::scope` semantics.
//!
//! [`in_worker`] reports whether the current thread is already
//! executing a pool task; kernel layers use it to fork only at the
//! outermost level (an inner μs-scale row loop gains nothing from
//! forking when the outer stage already saturates the pool).
//!
//! The process-wide handle is [`global`], sized to
//! `available_parallelism` and spawned lazily on first parallel scope
//! — fully sequential programs never start a thread.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use copse_trace::Stopwatch;

/// A lifetime-erased unit of queued work.
type Job = Box<dyn FnOnce() + Send>;

/// A queued job stamped with its enqueue instant, so the executing
/// thread can attribute queue-wait time in [`WorkerPool::stats`].
struct QueuedJob {
    run: Job,
    enqueued: Stopwatch,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    /// FIFO of pending jobs; guarded by one mutex so completion
    /// accounting (see [`ScopeState`]) can piggyback on it without a
    /// second lock ordering.
    queue: Mutex<VecDeque<QueuedJob>>,
    /// Notified on every push, every task completion, and shutdown.
    signal: Condvar,
    shutdown: AtomicBool,
    /// One counter slot per spawned worker thread (`threads - 1`).
    worker_counters: Vec<WorkerCounters>,
    /// Aggregate slot for scoping/helping threads: the inline first
    /// task of every scope and any queued task a blocked scoper steals
    /// while helping.
    helper_counters: WorkerCounters,
}

/// Lock-free per-worker execution counters (relaxed ordering — stats
/// are a monitoring snapshot, not a synchronization point).
#[derive(Default)]
struct WorkerCounters {
    tasks: AtomicU64,
    busy_nanos: AtomicU64,
    wait_nanos: AtomicU64,
}

impl WorkerCounters {
    /// Runs one task, attributing its queue wait and busy time here.
    fn run(&self, wait: Duration, job: Job) {
        let started = Stopwatch::start();
        run_as_pool_job(job);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(
            started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.wait_nanos.fetch_add(
            wait.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            tasks_executed: self.tasks.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            queue_wait: Duration::from_nanos(self.wait_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// Execution counters for one worker (or the aggregated helper slot),
/// as reported by [`WorkerPool::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Pool tasks this worker has run to completion.
    pub tasks_executed: u64,
    /// Total wall-clock time spent executing tasks.
    pub busy: Duration,
    /// Total time those tasks sat in the queue before this worker
    /// picked them up (zero for tasks run inline by a scoping caller).
    pub queue_wait: Duration,
}

/// A point-in-time snapshot of the pool's execution counters.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Total workers, counting the scoping caller.
    pub threads: usize,
    /// One entry per spawned worker thread (`threads - 1` entries).
    pub workers: Vec<WorkerStats>,
    /// Aggregate over every scoping/helping thread: inline first
    /// tasks and queue steals made while waiting on a scope.
    pub helpers: WorkerStats,
}

impl PoolStats {
    /// Tasks executed across all workers and helpers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks_executed).sum::<u64>() + self.helpers.tasks_executed
    }

    /// Total busy time across all workers and helpers.
    pub fn total_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum::<Duration>() + self.helpers.busy
    }

    /// Total queue-wait time across all executed tasks.
    pub fn total_queue_wait(&self) -> Duration {
        self.workers.iter().map(|w| w.queue_wait).sum::<Duration>() + self.helpers.queue_wait
    }
}

/// Per-scope completion accounting.
struct ScopeState {
    /// Tasks not yet finished. The final decrement happens while the
    /// shared queue mutex is held, so a waiter that observed a nonzero
    /// count under the same lock cannot miss the wakeup.
    remaining: AtomicUsize,
    /// First panic payload from any task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

thread_local! {
    /// Whether this thread is currently executing a pool task.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// `true` while the current thread is executing a task submitted to a
/// [`WorkerPool`] (on a pool worker *or* on a scoping thread helping
/// its own scope). Kernel layers consult this to fork only at the
/// outermost level.
pub fn in_worker() -> bool {
    IN_POOL_JOB.with(Cell::get)
}

/// Marks the current thread as inside a pool task for the duration of
/// `f`, restoring the previous state afterwards (nesting-safe).
fn run_as_pool_job(f: impl FnOnce()) {
    let prev = IN_POOL_JOB.with(|c| c.replace(true));
    f();
    IN_POOL_JOB.with(|c| c.set(prev));
}

/// An opaque per-task context value, propagated from a scoping thread
/// to every task its scope forks (see [`set_task_context`]).
pub type TaskContext = Arc<dyn Any + Send + Sync>;

thread_local! {
    /// The context the current thread's work is attributed to.
    static TASK_CONTEXT: RefCell<Option<TaskContext>> = const { RefCell::new(None) };
}

/// Installs `context` as the current thread's task context until the
/// returned guard drops (the previous context is then restored, so
/// installs nest). Every `scope_*` call forked while the guard is live
/// carries the context to its tasks — transitively, across worker
/// threads and nested scopes — where [`with_task_context`] can read
/// it. The meter layer uses this to attribute FHE ops recorded on pool
/// workers back to the evaluation pass that forked them.
pub fn set_task_context(context: TaskContext) -> TaskContextGuard {
    TaskContextGuard {
        prev: TASK_CONTEXT.with(|c| c.replace(Some(context))),
    }
}

/// Calls `f` with the current thread's task context, if any. The
/// context is passed by reference — no `Arc` clone per call, cheap
/// enough for per-operation hot paths.
pub fn with_task_context<R>(f: impl FnOnce(Option<&TaskContext>) -> R) -> R {
    TASK_CONTEXT.with(|c| f(c.borrow().as_ref()))
}

/// Guard returned by [`set_task_context`]; restores the previously
/// installed context when dropped.
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct TaskContextGuard {
    prev: Option<TaskContext>,
}

impl std::fmt::Debug for TaskContextGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskContextGuard").finish_non_exhaustive()
    }
}

impl Drop for TaskContextGuard {
    fn drop(&mut self) {
        TASK_CONTEXT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// A persistent pool of worker threads with scoped fork-join.
///
/// `WorkerPool::new(t)` spawns `t - 1` OS threads; the thread calling
/// a `scope_*` method participates as the `t`-th worker. `t = 1` is a
/// valid degenerate pool that runs everything inline on the caller.
///
/// ```
/// let pool = copse_pool::WorkerPool::new(4);
/// // Results come back in index order regardless of scheduling.
/// let squares = pool.scope_indices(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// // Most callers share the process-wide pool instead:
/// let sums = copse_pool::global().scope_chunks(10, 3, |r| r.sum::<usize>());
/// assert_eq!(sums.iter().sum::<usize>(), 45);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// Splits `0..n` into at most `chunks` contiguous ranges of nearly
/// equal size (empty ranges are omitted). The split is a pure function
/// of `(n, chunks)` — part of the determinism contract.
pub fn chunk_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let chunks = chunks.max(1).min(n.max(1));
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

impl WorkerPool {
    /// Creates a pool with `threads` total workers (the scoping caller
    /// counts as one, so `threads - 1` OS threads are spawned).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
            worker_counters: (1..threads).map(|_| WorkerCounters::default()).collect(),
            helper_counters: WorkerCounters::default(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("copse-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i - 1))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Total workers, including the scoping caller.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `worker` over the [`chunk_ranges`] split of `0..n` using
    /// at most `chunks` tasks, returning per-chunk results **in chunk
    /// order**. With one chunk (or a one-thread pool) everything runs
    /// inline on the caller.
    ///
    /// # Panics
    ///
    /// Re-throws the first panic raised by any task, after all tasks
    /// of the scope have finished.
    pub fn scope_chunks<R, F>(&self, n: usize, chunks: usize, worker: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(n, chunks);
        if ranges.len() <= 1 || self.workers.is_empty() {
            return ranges.into_iter().map(worker).collect();
        }
        let worker = &worker;
        self.scope(
            ranges
                .into_iter()
                .map(|range| Box::new(move || worker(range)) as Box<dyn FnOnce() -> R + Send + '_>)
                .collect(),
        )
    }

    /// Runs `f(i)` for every `i in 0..n` in at most `chunks` parallel
    /// tasks, returning results in index order.
    ///
    /// # Panics
    ///
    /// Propagates task panics like [`WorkerPool::scope_chunks`].
    pub fn scope_indices<R, F>(&self, n: usize, chunks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut per_chunk = self.scope_chunks(n, chunks, |range| range.map(&f).collect::<Vec<R>>());
        let mut out = Vec::with_capacity(n);
        for chunk in &mut per_chunk {
            out.append(chunk);
        }
        out
    }

    /// Like [`WorkerPool::scope_chunks`] over `0..data.len()`, but each
    /// task additionally receives the sub-slice of `data` matching its
    /// range — the disjoint split makes in-place parallel mutation
    /// safe without interior mutability.
    ///
    /// # Panics
    ///
    /// Propagates task panics like [`WorkerPool::scope_chunks`].
    pub fn scope_chunks_mut<T, R, F>(&self, data: &mut [T], chunks: usize, worker: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(Range<usize>, &mut [T]) -> R + Sync,
    {
        let ranges = chunk_ranges(data.len(), chunks);
        if ranges.len() <= 1 || self.workers.is_empty() {
            return ranges
                .into_iter()
                .map(|r| worker(r.clone(), &mut data[r]))
                .collect();
        }
        let worker = &worker;
        let mut tasks: Vec<Box<dyn FnOnce() -> R + Send + '_>> = Vec::with_capacity(ranges.len());
        let mut rest = data;
        for range in ranges {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(range.len());
            rest = tail;
            tasks.push(Box::new(move || worker(range, head)));
        }
        self.scope(tasks)
    }

    /// Fork-join core: runs every task (task 0 inline on the caller,
    /// the rest queued), helps the pool until all of them finished,
    /// and returns their results in task order.
    fn scope<'env, R: Send>(&self, tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>) -> Vec<R> {
        let n = tasks.len();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        if n == 0 {
            return Vec::new();
        }
        if n == 1 || self.workers.is_empty() {
            for (slot, task) in results.iter_mut().zip(tasks) {
                *slot = Some(task());
            }
            return results.into_iter().map(|r| r.expect("task ran")).collect();
        }

        let state = ScopeState {
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
        };
        // The scoping thread's task context rides along to every task
        // of the scope, wherever it executes (worker thread, helping
        // scoper, or inline) — nested scopes re-capture and so forward
        // it transitively.
        let context = TASK_CONTEXT.with(|c| c.borrow().clone());
        // Each task writes exactly its own slot; the address is passed
        // as a raw pointer because the tasks are lifetime-erased below.
        let slots = SendPtr(results.as_mut_ptr());
        {
            let shared = &*self.shared;
            let state = &state;
            let context = &context;
            let mut jobs: Vec<Job> = Vec::with_capacity(n);
            for (i, task) in tasks.into_iter().enumerate() {
                let wrapper = move || {
                    let _ctx = context.clone().map(set_task_context);
                    let outcome = catch_unwind(AssertUnwindSafe(task));
                    match outcome {
                        // SAFETY: slot `i` belongs to this task alone,
                        // and `scope` keeps `results` alive (and does
                        // not read it) until `remaining` hits zero.
                        Ok(value) => unsafe { *slots.get().add(i) = Some(value) },
                        Err(payload) => {
                            let mut first = state.panic.lock().expect("panic slot");
                            first.get_or_insert(payload);
                        }
                    }
                    // The final decrement is made visible under the
                    // queue mutex so a waiter that just observed a
                    // nonzero count cannot sleep through the last
                    // completion.
                    let _guard = shared.queue.lock().expect("pool queue");
                    state.remaining.fetch_sub(1, Ordering::AcqRel);
                    shared.signal.notify_all();
                };
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(wrapper);
                // SAFETY: the job only borrows `state`, `results`, and
                // the caller's task captures, all of which outlive it:
                // `scope` blocks until `remaining == 0`, i.e. until
                // every job (queued or stolen) has run to completion,
                // and the pool cannot shut down mid-scope because
                // `scope` holds `&self`.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                jobs.push(job);
            }
            let first = jobs.remove(0);
            {
                let enqueued = Stopwatch::start();
                let mut queue = shared.queue.lock().expect("pool queue");
                queue.extend(jobs.into_iter().map(|run| QueuedJob { run, enqueued }));
                shared.signal.notify_all();
            }
            // The caller is a worker too: run the first task inline
            // (no queue wait by construction), then help until the
            // scope drains.
            shared.helper_counters.run(Duration::ZERO, first);
            self.help_until(state);
        }
        if let Some(payload) = state.panic.lock().expect("panic slot").take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("scope completed every task"))
            .collect()
    }

    /// Executes queued jobs (from any scope) until `state`'s scope has
    /// no tasks left, sleeping only when the queue is empty.
    fn help_until(&self, state: &ScopeState) {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().expect("pool queue");
        loop {
            if state.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = queue.pop_front() {
                drop(queue);
                let wait = job.enqueued.elapsed();
                shared.helper_counters.run(wait, job.run);
                queue = shared.queue.lock().expect("pool queue");
            } else {
                queue = shared.signal.wait(queue).expect("pool queue");
            }
        }
    }

    /// Snapshots the pool's execution counters: per spawned worker,
    /// tasks executed, busy time, and queue-wait time, plus one
    /// aggregate slot for scoping/helping threads. Counters only ever
    /// grow; diff two snapshots to meter an interval.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads,
            workers: self
                .shared
                .worker_counters
                .iter()
                .map(WorkerCounters::snapshot)
                .collect(),
            helpers: self.shared.helper_counters.snapshot(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let _guard = self.shared.queue.lock().expect("pool queue");
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.signal.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Raw-pointer wrapper asserting cross-thread transfer is safe (each
/// task dereferences a distinct, live slot).
struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: see `SendPtr` — usage is confined to disjoint slot writes
// synchronised by the scope's completion counter.
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

fn worker_loop(shared: &Shared, index: usize) {
    let counters = &shared.worker_counters[index];
    let mut queue = shared.queue.lock().expect("pool queue");
    loop {
        if let Some(job) = queue.pop_front() {
            drop(queue);
            let wait = job.enqueued.elapsed();
            counters.run(wait, job.run);
            queue = shared.queue.lock().expect("pool queue");
        } else if shared.shutdown.load(Ordering::Acquire) {
            return;
        } else {
            queue = shared.signal.wait(queue).expect("pool queue");
        }
    }
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// Worker floor for the global pool: callers legitimately request
/// parallel degrees above the core count (determinism-under-
/// concurrency tests, a 4-thread bench on a 2-core runner), and a
/// parked worker costs only its stack. Without the floor, a
/// single-core host would get a zero-worker pool and silently turn
/// every parallel path into the sequential one — including the tests
/// meant to exercise real interleaving.
const GLOBAL_MIN_THREADS: usize = 4;

/// The process-wide shared pool, created lazily on first use and sized
/// to the host's `available_parallelism` (with a small floor, and
/// overridable via the `COPSE_POOL_THREADS` environment variable).
/// Every layer of the workspace (FHE kernels, stage loops, server
/// batch workers) forks into this one pool, so concurrent consumers
/// share the host's cores instead of oversubscribing them.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(|| {
        let threads = std::env::var("COPSE_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map_or(1, |n| n.get())
                    .max(GLOBAL_MIN_THREADS)
            });
        WorkerPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    fn pool(threads: usize) -> WorkerPool {
        WorkerPool::new(threads)
    }

    #[test]
    fn chunks_cover_range_without_overlap() {
        for n in [0usize, 1, 5, 64, 100] {
            for t in [1usize, 2, 7, 32] {
                let ranges = chunk_ranges(n, t);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} t={t}");
                assert!(ranges.len() <= t.max(1));
            }
        }
    }

    #[test]
    fn chunk_sizes_are_balanced() {
        let sizes: Vec<usize> = chunk_ranges(10, 3).iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn results_come_back_in_task_order() {
        let p = pool(4);
        for n in [0usize, 1, 2, 3, 17, 100] {
            let out = p.scope_indices(n, 4, |i| i * i);
            assert_eq!(out, (0..n).map(|i| i * i).collect::<Vec<_>>(), "n = {n}");
            let chunked = p.scope_chunks(n, 3, |r| (r.start, r.end));
            let flat: Vec<usize> = chunked.iter().flat_map(|&(s, e)| [s, e]).collect();
            assert!(flat.windows(2).all(|w| w[0] <= w[1]), "ordered chunks");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let p = pool(8);
        let counter = AtomicUsize::new(0);
        let _ = p.scope_chunks(1000, 8, |range| {
            counter.fetch_add(range.len(), Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn one_thread_pool_runs_inline() {
        let p = pool(1);
        let caller = std::thread::current().id();
        let ids = p.scope_chunks(64, 8, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
        assert!(!in_worker(), "flag restored outside scopes");
    }

    #[test]
    fn two_tasks_really_run_on_two_threads() {
        // A rendezvous only two concurrent threads can pass: if the
        // caller ran both chunks serially the barrier would deadlock
        // (and the test harness would time out) instead of passing.
        let p = pool(2);
        let barrier = Barrier::new(2);
        let ids = p.scope_chunks(2, 2, |_| {
            barrier.wait();
            std::thread::current().id()
        });
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1], "distinct threads ran the chunks");
    }

    #[test]
    fn panics_propagate_after_scope_completion() {
        let p = pool(4);
        let completed = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&completed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            p.scope_indices(8, 4, |i| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
                seen.fetch_add(1, Ordering::SeqCst);
                i
            })
        }));
        let payload = outcome.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(message.contains("exploded"), "got {message}");
        // Every non-panicking task still ran (scope waits for all).
        assert_eq!(completed.load(Ordering::SeqCst), 7);
        // The pool survives and serves the next scope.
        assert_eq!(p.scope_indices(4, 4, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let p = pool(3);
        let out = p.scope_indices(6, 3, |i| {
            assert!(in_worker(), "outer task runs as a pool job");
            let inner: usize = p.scope_indices(5, 3, |j| i * j).into_iter().sum();
            inner
        });
        let want: Vec<usize> = (0..6).map(|i| i * 10).collect(); // 0+1+2+3+4 = 10
        assert_eq!(out, want);
    }

    #[test]
    fn scope_chunks_mut_hands_out_disjoint_subslices() {
        let p = pool(4);
        let mut data: Vec<u64> = (0..100).collect();
        let sums = p.scope_chunks_mut(&mut data, 4, |range, slice| {
            assert_eq!(slice.len(), range.len());
            let mut sum = 0u64;
            for (offset, x) in slice.iter_mut().enumerate() {
                assert_eq!(*x, (range.start + offset) as u64, "aligned sub-slice");
                *x *= 2;
                sum += *x;
            }
            sum
        });
        assert_eq!(data, (0..100).map(|i| i * 2).collect::<Vec<u64>>());
        assert_eq!(sums.iter().sum::<u64>(), (0..100u64).map(|i| i * 2).sum());
    }

    #[test]
    fn in_worker_is_false_on_plain_threads_and_true_in_tasks() {
        assert!(!in_worker());
        let p = pool(2);
        let flags = p.scope_indices(4, 2, |_| in_worker());
        assert!(flags.into_iter().all(|f| f));
        assert!(!in_worker());
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_host() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
        assert_eq!(
            global().scope_indices(10, 4, |i| i),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn heavy_contention_stays_correct() {
        let p = pool(4);
        let total = AtomicU64::new(0);
        for round in 0..50u64 {
            let out = p.scope_chunks(64, 4, |range| range.map(|i| i as u64 * round).sum::<u64>());
            total.fetch_add(out.iter().sum::<u64>(), Ordering::Relaxed);
        }
        let per_round: u64 = (0..64u64).sum();
        let want: u64 = (0..50u64).map(|r| per_round * r).sum();
        assert_eq!(total.load(Ordering::Relaxed), want);
    }

    #[test]
    fn task_context_reaches_every_task_transitively() {
        let p = pool(4);
        let tally: TaskContext = Arc::new(AtomicU64::new(0));
        assert!(with_task_context(|c| c.is_none()), "clean slate");
        {
            let _guard = set_task_context(Arc::clone(&tally));
            p.scope_indices(8, 4, |_| {
                // Outer tasks see the scoper's context...
                with_task_context(|c| {
                    let counter = c
                        .expect("context propagated")
                        .downcast_ref::<AtomicU64>()
                        .expect("same payload");
                    counter.fetch_add(1, Ordering::Relaxed);
                });
                // ...and forward it through nested scopes, wherever
                // those tasks land.
                p.scope_indices(3, 3, |_| {
                    with_task_context(|c| {
                        c.expect("nested context")
                            .downcast_ref::<AtomicU64>()
                            .expect("same payload")
                            .fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        }
        assert!(with_task_context(|c| c.is_none()), "guard restored");
        let counter = Arc::downcast::<AtomicU64>(tally).expect("downcast");
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 8 * 3);
    }

    #[test]
    fn context_guards_nest_and_restore() {
        let a: TaskContext = Arc::new(1u32);
        let b: TaskContext = Arc::new(2u32);
        let read = || with_task_context(|c| c.and_then(|c| c.downcast_ref::<u32>().copied()));
        assert_eq!(read(), None);
        let outer = set_task_context(a);
        assert_eq!(read(), Some(1));
        {
            let _inner = set_task_context(b);
            assert_eq!(read(), Some(2));
        }
        assert_eq!(read(), Some(1), "inner drop restores outer");
        drop(outer);
        assert_eq!(read(), None);
    }

    #[test]
    fn tasks_that_panic_do_not_leak_context() {
        let p = pool(2);
        let ctx: TaskContext = Arc::new(7u32);
        {
            let _guard = set_task_context(ctx);
            let _ = catch_unwind(AssertUnwindSafe(|| {
                p.scope_indices(4, 2, |i| {
                    if i == 1 {
                        panic!("boom");
                    }
                })
            }));
        }
        // Workers that ran a panicking task must have restored their
        // thread-local context (next scope starts clean).
        let leaks = p.scope_indices(4, 2, |_| with_task_context(|c| c.is_some()));
        assert!(leaks.into_iter().all(|leaked| !leaked));
    }

    #[test]
    fn stats_account_for_every_task() {
        let p = pool(4);
        let before = p.stats();
        assert_eq!(before.threads, 4);
        assert_eq!(before.workers.len(), 3, "one slot per spawned worker");
        let rounds = 10usize;
        for _ in 0..rounds {
            let _ = p.scope_chunks(64, 4, |range| {
                // Enough work that busy time is measurably nonzero.
                range
                    .map(|i| i as u64)
                    .map(std::hint::black_box)
                    .sum::<u64>()
            });
        }
        let after = p.stats();
        assert_eq!(
            after.total_tasks() - before.total_tasks(),
            (rounds * 4) as u64,
            "every chunk counted exactly once"
        );
        assert!(
            after.helpers.tasks_executed - before.helpers.tasks_executed >= rounds as u64,
            "the scoper ran at least each scope's inline first task"
        );
        assert!(after.total_busy() > before.total_busy());
        assert!(after.total_queue_wait() >= before.total_queue_wait());
    }

    #[test]
    fn zero_and_tiny_scopes_are_fine() {
        let p = pool(4);
        let empty: Vec<usize> = p.scope_indices(0, 4, |i| i);
        assert!(empty.is_empty());
        assert_eq!(p.scope_indices(1, 4, |i| i + 41), vec![41]);
        let mut nothing: [u8; 0] = [];
        let r: Vec<()> = p.scope_chunks_mut(&mut nothing, 4, |_, _| ());
        assert!(r.is_empty());
    }
}
